//===- tests/analysis/LockVarStoreTest.cpp - Storage-layer tests ----------===//
//
// Unit tests for the shared per-(lock, variable) metadata store: slot
// creation and lookup semantics (a slot "has" a clock only once a release
// folded it), fold() membership clearing, reference stability across
// arbitrary growth, and footprint accounting. Plus DenseIdSet and the
// racy-site accounting built on it.
//
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisRegistry.h"
#include "analysis/LockVarStore.h"
#include "support/DenseIdSet.h"
#include "trace/TraceText.h"

#include <gtest/gtest.h>

using namespace st;

namespace {

TEST(LockVarStoreTest, FindReturnsNullUntilTouched) {
  LockVarStore S;
  EXPECT_EQ(S.find(0, 0), nullptr);
  EXPECT_EQ(S.find(7, 123), nullptr);
  S.touchRead(7, 123);
  ASSERT_NE(S.find(7, 123), nullptr);
  EXPECT_EQ(S.find(7, 122), nullptr) << "neighbor slot must not appear";
  EXPECT_EQ(S.find(6, 123), nullptr) << "other lock must not appear";
  EXPECT_EQ(S.slotCount(), 1u);
}

TEST(LockVarStoreTest, HasFlagsOnlySetByFold) {
  LockVarStore S;
  S.touchRead(0, 1);
  S.touchWrite(0, 2);
  // Mid-critical-section: membership exists but no release folded yet, so
  // lookups must behave like the maps' "no entry".
  EXPECT_FALSE(S.find(0, 1)->hasRead());
  EXPECT_FALSE(S.find(0, 2)->hasWrite());

  VectorClock C;
  C.set(3, 42);
  S.fold(0, C, /*RelIdx=*/9);

  const LockVarStore::Slot *R = S.find(0, 1);
  ASSERT_NE(R, nullptr);
  EXPECT_TRUE(R->hasRead());
  EXPECT_FALSE(R->hasWrite());
  EXPECT_EQ(R->ReadC.get(3), 42u);
  EXPECT_EQ(R->ReadRelIdx, 9u);

  const LockVarStore::Slot *W = S.find(0, 2);
  ASSERT_NE(W, nullptr);
  EXPECT_TRUE(W->hasWrite());
  EXPECT_FALSE(W->hasRead());
  EXPECT_EQ(W->WriteC.get(3), 42u);
  EXPECT_EQ(W->WriteRelIdx, 9u);
}

TEST(LockVarStoreTest, FoldClearsMembershipAndJoins) {
  LockVarStore S;
  S.touchRead(1, 5);
  VectorClock C1;
  C1.set(0, 10);
  S.fold(1, C1, 1);

  // Second critical section does not re-touch var 5: the next fold must
  // not advance its clock.
  S.touchRead(1, 6);
  VectorClock C2;
  C2.set(0, 20);
  S.fold(1, C2, 2);

  EXPECT_EQ(S.find(1, 5)->ReadC.get(0), 10u);
  EXPECT_EQ(S.find(1, 5)->ReadRelIdx, 1u);
  EXPECT_EQ(S.find(1, 6)->ReadC.get(0), 20u);

  // Re-touch and fold again: clocks join (pointwise max), index advances.
  S.touchRead(1, 5);
  VectorClock C3;
  C3.set(0, 15);
  C3.set(1, 7);
  S.fold(1, C3, 3);
  EXPECT_EQ(S.find(1, 5)->ReadC.get(0), 15u);
  EXPECT_EQ(S.find(1, 5)->ReadC.get(1), 7u);
  EXPECT_EQ(S.find(1, 5)->ReadRelIdx, 3u);
}

TEST(LockVarStoreTest, TouchReadWriteMarksBothSets) {
  LockVarStore S;
  S.touchReadWrite(2, 9);
  EXPECT_EQ(S.slotCount(), 1u);
  VectorClock C;
  C.set(0, 5);
  S.fold(2, C, 4);
  const LockVarStore::Slot *Slot = S.find(2, 9);
  ASSERT_NE(Slot, nullptr);
  EXPECT_TRUE(Slot->hasRead());
  EXPECT_TRUE(Slot->hasWrite());
  EXPECT_EQ(Slot->ReadC.get(0), 5u);
  EXPECT_EQ(Slot->WriteC.get(0), 5u);
  // Equivalent to touchRead + touchWrite: no duplicate membership.
  S.touchRead(2, 9);
  S.touchReadWrite(2, 9);
  S.fold(2, C, 5);
  EXPECT_EQ(S.slotCount(), 1u);
}

TEST(LockVarStoreTest, DuplicateTouchesFoldOnce) {
  LockVarStore S;
  S.touchRead(0, 3);
  S.touchRead(0, 3);
  S.touchRead(0, 3);
  VectorClock C;
  C.set(0, 1);
  S.fold(0, C, 1);
  EXPECT_EQ(S.slotCount(), 1u);
  EXPECT_EQ(S.find(0, 3)->ReadC.get(0), 1u);
}

TEST(LockVarStoreTest, SlotsAreReferenceStableAcrossGrowth) {
  LockVarStore S;
  S.touchRead(0, 0);
  const LockVarStore::Slot *First = S.find(0, 0);
  // Grow across many pages, locks, and arena segments.
  for (LockId M = 0; M != 16; ++M)
    for (VarId X = 0; X != 300; ++X)
      S.touchWrite(M, X);
  EXPECT_EQ(S.find(0, 0), First)
      << "slot moved: references held across growth would dangle";
  EXPECT_EQ(S.slotCount(), 16u * 300u);
}

TEST(LockVarStoreTest, FootprintGrowsWithSlotsAndSpilledClocks) {
  LockVarStore S;
  size_t Empty = S.footprintBytes();
  S.touchRead(0, 0);
  size_t OneSlot = S.footprintBytes();
  EXPECT_GT(OneSlot, Empty);

  // Fold a clock wider than the inline capacity: the heap spill must be
  // charged.
  VectorClock Wide;
  Wide.set(VectorClock::InlineCapacity + 4, 1);
  S.touchRead(0, 0);
  S.fold(0, Wide, 1);
  EXPECT_GT(S.footprintBytes(), OneSlot);
}

TEST(DenseIdSetTest, InsertContainsSize) {
  DenseIdSet S;
  EXPECT_TRUE(S.empty());
  EXPECT_FALSE(S.contains(0));
  EXPECT_TRUE(S.insert(0));
  EXPECT_FALSE(S.insert(0)) << "duplicate insert must report not-new";
  EXPECT_TRUE(S.insert(63));
  EXPECT_TRUE(S.insert(64));
  EXPECT_TRUE(S.insert(1000));
  EXPECT_EQ(S.size(), 4u);
  EXPECT_TRUE(S.contains(63));
  EXPECT_TRUE(S.contains(64));
  EXPECT_TRUE(S.contains(1000));
  EXPECT_FALSE(S.contains(999));
  EXPECT_GT(S.footprintBytes(), 0u);
}

TEST(DenseIdSetTest, FootprintIsBitVectorSized) {
  DenseIdSet S;
  S.insert(8191); // 8192 bits = 128 words
  EXPECT_GE(S.footprintBytes(), 128 * sizeof(uint64_t));
  // Far below an unordered_set's per-element cost once ids are dense.
  EXPECT_LE(S.footprintBytes(), 4096u);
}

TEST(RacySiteAccounting, FootprintCoversRaceState) {
  // The base race accounting (records + racy-site sets) must be part of
  // footprintBytes() for every analysis, and grow once races are found.
  auto A = createAnalysis(AnalysisKind::FTOHB);
  size_t Before = A->footprintBytes();
  A->processTrace(traceFromText("T1: wr(x)\nT2: wr(x)\nT1: wr(y)\n"
                                "T2: wr(y)\n"));
  EXPECT_EQ(A->dynamicRaces(), 2u);
  EXPECT_EQ(A->staticRaces(), 2u);
  EXPECT_GT(A->footprintBytes(), Before);
  EXPECT_GT(A->raceAccountingFootprintBytes(), 0u);
}

TEST(RacySiteAccounting, ExplicitAndFallbackSitesStayDistinct) {
  // Same variable ids with explicit sites vs. without: static counting
  // keys on site where present, variable otherwise (disjoint id spaces).
  auto WithSites = createAnalysis(AnalysisKind::FTOHB);
  {
    // Two dynamic races at one shared static site -> one static race.
    TraceBuilder B;
    B.write(0, 0, /*Site=*/7).write(1, 0, 7).write(0, 1, 7).write(1, 1, 7);
    WithSites->processTrace(B.build());
  }
  EXPECT_EQ(WithSites->dynamicRaces(), 2u);
  EXPECT_EQ(WithSites->staticRaces(), 1u);

  auto NoSites = createAnalysis(AnalysisKind::FTOHB);
  {
    TraceBuilder B;
    B.write(0, 0).write(1, 0).write(0, 1).write(1, 1);
    NoSites->processTrace(B.build());
  }
  EXPECT_EQ(NoSites->staticRaces(), 2u) << "fallback keys on variable";
}

} // namespace
