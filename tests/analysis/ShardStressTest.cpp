//===- tests/analysis/ShardStressTest.cpp - Concurrent shard stress -------===//
//
// TSan-facing stress for the sharded executor: many shard threads, each
// owning a disjoint VarId slice of its private LockVarStore/CS state,
// replaying a shared sync broadcast and exchanging predictive-clock
// deltas, on workloads big enough that every batch has real cross-shard
// traffic. Runs under the plain suite too (parity still asserted), but
// its reason to exist is the SMARTTRACK_SANITIZE=thread CI job: any
// unsynchronized access between shard workers, the merge step, or the
// delta protocol is a TSan report here.
//
//===----------------------------------------------------------------------===//

#include "analysis/sharded/ShardedAnalysis.h"
#include "engine/EventSource.h"
#include "report/Session.h"
#include "workload/RandomTrace.h"
#include "workload/Workload.h"

#include <gtest/gtest.h>

using namespace st;

namespace {

RandomTraceConfig stressConfig() {
  // Racy, lock-nested, and wide enough that all shards own hot vars and
  // critical accesses (delta slots) occur in every batch.
  RandomTraceConfig C;
  C.Seed = 31337;
  C.Threads = 12;
  C.Vars = 64;
  C.Locks = 8;
  C.Events = 60000;
  C.MaxNesting = 3;
  C.PSync = 0.35;
  C.PWrite = 0.6;
  return C;
}

TEST(ShardStressTest, ConcurrentShardOwnershipMatchesSequential) {
  Trace Tr = generateRandomTrace(stressConfig());
  for (AnalysisKind K : {AnalysisKind::STWDC, AnalysisKind::FTOWDC}) {
    auto Seq = createAnalysis(K);
    Seq->processTrace(Tr);
    for (unsigned Shards : {4u, 8u}) {
      ShardedAnalysis Shd(K, Shards);
      // Small batches maximize hand-off/barrier iterations per run.
      const Event *Events = Tr.events().data();
      for (size_t I = 0; I < Tr.size(); I += 512)
        Shd.processBatch(Events + I, std::min<size_t>(512, Tr.size() - I));
      EXPECT_EQ(Seq->dynamicRaces(), Shd.dynamicRaces())
          << analysisKindName(K) << " shards " << Shards;
      EXPECT_EQ(Seq->staticRaces(), Shd.staticRaces())
          << analysisKindName(K) << " shards " << Shards;
      const CaseStats *A = Seq->caseStats();
      const CaseStats *B = Shd.caseStats();
      ASSERT_NE(A, nullptr);
      ASSERT_NE(B, nullptr);
      EXPECT_EQ(A->nonSameEpochReads(), B->nonSameEpochReads());
      EXPECT_EQ(A->nonSameEpochWrites(), B->nonSameEpochWrites());
    }
  }
}

TEST(ShardStressTest, ShardsComposeWithParallelAnalysisFanout) {
  // Both parallel modes at once: thread-per-analysis fan-out (engine
  // workers) each driving a 4-shard executor — the full thread topology
  // a parallel --shards CLI run produces, under one TSan roof.
  const WorkloadProfile *P = findProfile("avrora");
  ASSERT_NE(P, nullptr);

  auto RunWith = [&](unsigned Shards, bool Parallel) {
    SessionOptions SO;
    SO.Shards = Shards;
    SO.Parallel = Parallel;
    SO.MaxStoredRaces = 64;
    Session S(SO);
    S.add(AnalysisKind::STWDC);
    S.add(AnalysisKind::FTOWDC);
    WorkloadGenerator Gen(*P, 50000, 7);
    GeneratorEventSource Src(Gen);
    return S.run(Src);
  };

  RunReport Want = RunWith(1, false);
  RunReport Got = RunWith(4, true);
  ASSERT_EQ(Want.Analyses.size(), Got.Analyses.size());
  for (size_t I = 0; I != Want.Analyses.size(); ++I) {
    EXPECT_EQ(Want.Analyses[I].DynamicRaces, Got.Analyses[I].DynamicRaces)
        << Want.Analyses[I].Name;
    EXPECT_EQ(Want.Analyses[I].StaticRaces, Got.Analyses[I].StaticRaces)
        << Want.Analyses[I].Name;
  }
}

} // namespace
