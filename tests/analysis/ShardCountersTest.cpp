//===- tests/analysis/ShardCountersTest.cpp - Shard hot-path counters -----===//
//
// The coalescing protocol's measured claims, asserted as invariants:
// against the per-access legacy protocol on the same avrora-profile
// stream at 4 shards, coalescing must publish fewer deltas and replay
// fewer sync events per shard (the remainder fast-forwarded from the
// shared schedule), with the sync total conserved across protocols.
// Also covers the RunReport / SUMMARY-frame surfacing of the counters
// and the pinned-worker execution mode.
//
//===----------------------------------------------------------------------===//

#include "analysis/sharded/ShardedAnalysis.h"
#include "report/Session.h"
#include "serve/Frame.h"
#include "workload/Workload.h"

#include <gtest/gtest.h>

using namespace st;

namespace {

/// A mid-size avrora-profile stream: lock-heavy enough that critical
/// runs dominate, with enough sync events that replay thinning shows.
Trace avroraTrace(uint64_t Events = 40000) {
  const WorkloadProfile *P = findProfile("avrora");
  EXPECT_NE(P, nullptr) << "avrora profile missing from dacapoProfiles()";
  if (P == nullptr)
    return Trace();
  WorkloadGenerator Gen(*P, Events, /*Seed=*/42);
  return Gen.materialize(Events);
}

ShardRunStats runStats(const Trace &Tr, const ShardedOptions &O) {
  ShardedAnalysis Shd(AnalysisKind::STWDC, O);
  Shd.processBatch(Tr.events().data(), Tr.size());
  const ShardRunStats *S = Shd.shardRunStats();
  EXPECT_NE(S, nullptr);
  return S ? *S : ShardRunStats();
}

TEST(ShardCountersTest, CoalescingDropsPublicationsAndSyncReplay) {
  Trace Tr = avroraTrace();

  ShardedOptions Coalesced;
  Coalesced.NumShards = 4;
  Coalesced.CoalesceDeltas = true;
  ShardedOptions Legacy = Coalesced;
  Legacy.CoalesceDeltas = false;

  const ShardRunStats C = runStats(Tr, Coalesced);
  const ShardRunStats L = runStats(Tr, Legacy);

  ASSERT_EQ(C.Shards, 4u);
  ASSERT_EQ(L.Shards, 4u);

  // The tentpole's headline: one publication per run instead of one per
  // critical access. Legacy counts every critical access; coalescing
  // folds each surplus run member into DeltasCoalesced.
  EXPECT_GT(L.DeltasPublished, 0u);
  EXPECT_LT(C.DeltasPublished, L.DeltasPublished);
  EXPECT_GT(C.DeltasCoalesced, 0u);
  EXPECT_EQ(L.DeltasCoalesced, 0u);
  EXPECT_EQ(C.DeltasPublished + C.DeltasCoalesced, L.DeltasPublished);

  // Sync replay thinning: the coalescing path dispatches no per-shard
  // broadcast items at all — every sync event is fast-forwarded from
  // the shared schedule — while legacy replays each on every shard.
  // The per-shard total is conserved across protocols (each of the 4
  // shards still observes every sync event exactly once).
  EXPECT_EQ(C.SyncReplayed, 0u);
  EXPECT_GT(L.SyncReplayed, 0u);
  EXPECT_LT(C.SyncReplayed, L.SyncReplayed);
  EXPECT_EQ(L.SyncFastForwarded, 0u);
  EXPECT_EQ(C.SyncReplayed + C.SyncFastForwarded,
            L.SyncReplayed + L.SyncFastForwarded);

  // Adoption work shrinks too: clocks grow monotonically, so a run
  // whose end-of-run clock is unchanged had no changed per-access
  // publication either — coalescing can only merge mirror copies.
  EXPECT_LE(C.DeltasAdopted, L.DeltasAdopted);
  // Every adoption answers some publication on each of the 3 non-owning
  // shards.
  EXPECT_LE(C.DeltasAdopted, C.DeltasPublished * 3);
  EXPECT_LE(L.DeltasAdopted, L.DeltasPublished * 3);
}

TEST(ShardCountersTest, RunReportAndSummaryFrameCarryShardStats) {
  Trace Tr = avroraTrace(20000);

  SessionOptions SO;
  SO.Shards = 4;
  Session S(SO);
  S.add(AnalysisKind::STWDC);
  TraceEventSource Src(Tr);
  RunReport Rep = S.run(Src);

  ASSERT_EQ(Rep.Analyses.size(), 1u);
  const AnalysisRunResult &A = Rep.Analyses[0];
  ASSERT_TRUE(A.HasShardStats);
  EXPECT_EQ(A.ShardStats.Shards, 4u);
  EXPECT_GT(A.ShardStats.DeltasPublished, 0u);
  EXPECT_GT(A.ShardStats.DeltasCoalesced, 0u);
  EXPECT_GT(A.ShardStats.SyncFastForwarded, 0u);
  EXPECT_EQ(A.ShardStats.SyncReplayed, 0u);

  std::string Line = encodeSummaryLine(A, Tr.size());
  EXPECT_NE(Line.find("\"shard_stats\":{\"shards\":4"), std::string::npos)
      << Line;
  EXPECT_NE(Line.find("\"deltas_published\""), std::string::npos);
  EXPECT_NE(Line.find("\"sync_fast_forwarded\""), std::string::npos);
  EXPECT_NE(Line.find("\"spin_wakeups\""), std::string::npos);

  // A sequential run must NOT grow the field: the stats exist only when
  // the sharded executor actually ran.
  Session Seq;
  Seq.add(AnalysisKind::STWDC);
  TraceEventSource Src2(Tr);
  RunReport SeqRep = Seq.run(Src2);
  ASSERT_EQ(SeqRep.Analyses.size(), 1u);
  EXPECT_FALSE(SeqRep.Analyses[0].HasShardStats);
  EXPECT_EQ(encodeSummaryLine(SeqRep.Analyses[0], Tr.size())
                .find("shard_stats"),
            std::string::npos);

  // Results themselves are executor-invariant.
  EXPECT_EQ(Rep.Analyses[0].DynamicRaces, SeqRep.Analyses[0].DynamicRaces);
  EXPECT_EQ(Rep.Analyses[0].StaticRaces, SeqRep.Analyses[0].StaticRaces);
}

TEST(ShardCountersTest, PinnedWorkersStayExactAndHandoffIsCounted) {
  Trace Tr = avroraTrace(20000);

  ShardedOptions Plain;
  Plain.NumShards = 4;
  ShardedOptions Pinned = Plain;
  Pinned.PinWorkers = true;

  ShardedAnalysis A(AnalysisKind::STWDC, Plain);
  ShardedAnalysis B(AnalysisKind::STWDC, Pinned);
  // Many small batches: every batch is a spin-or-park handoff, so the
  // wakeup counters must account for each one.
  const Event *Ev = Tr.events().data();
  for (size_t I = 0; I < Tr.size(); I += 256) {
    size_t N = std::min<size_t>(256, Tr.size() - I);
    A.processBatch(Ev + I, N);
    B.processBatch(Ev + I, N);
  }

  EXPECT_EQ(A.dynamicRaces(), B.dynamicRaces());
  EXPECT_EQ(A.staticRaces(), B.staticRaces());
  ASSERT_EQ(A.raceRecords().size(), B.raceRecords().size());
  for (size_t I = 0; I != A.raceRecords().size(); ++I)
    EXPECT_EQ(A.raceRecords()[I].EventIdx, B.raceRecords()[I].EventIdx);

  // Every batch handoff ends in either a spin catch or a park, on both
  // the workers' side and shard 0's completion wait.
  const ShardRunStats *Sa = A.shardRunStats();
  const ShardRunStats *Sb = B.shardRunStats();
  ASSERT_NE(Sa, nullptr);
  ASSERT_NE(Sb, nullptr);
  EXPECT_GT(Sa->SpinWakeups + Sa->ParkWakeups, 0u);
  EXPECT_GT(Sb->SpinWakeups + Sb->ParkWakeups, 0u);
}

} // namespace
