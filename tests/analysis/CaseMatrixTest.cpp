//===- tests/analysis/CaseMatrixTest.cpp - FTO case coverage --------------===//
//
// Drives every FTO/SmartTrack access case (Algorithm 2 / Algorithm 3 /
// Table 12 columns) with a dedicated minimal trace, parameterized over all
// five epoch-optimized analyses. Each case's trigger condition comes
// straight from the algorithm text.
//
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisRegistry.h"
#include "trace/TraceText.h"

#include <gtest/gtest.h>

using namespace st;

namespace {

class CaseMatrix : public ::testing::TestWithParam<AnalysisKind> {
protected:
  CaseStats run(const char *Text) {
    auto A = createAnalysis(GetParam());
    A->processTrace(traceFromText(Text));
    const CaseStats *S = A->caseStats();
    EXPECT_NE(S, nullptr);
    return S ? *S : CaseStats();
  }
};

TEST_P(CaseMatrix, ReadSameEpoch) {
  CaseStats S = run("T1: rd(x)\nT1: rd(x)\nT1: rd(x)\n");
  EXPECT_EQ(S.ReadSameEpoch, 2u);
  EXPECT_EQ(S.nonSameEpochReads(), 1u);
}

TEST_P(CaseMatrix, WriteSameEpoch) {
  CaseStats S = run("T1: wr(x)\nT1: wr(x)\n");
  EXPECT_EQ(S.WriteSameEpoch, 1u);
  EXPECT_EQ(S.nonSameEpochWrites(), 1u);
}

TEST_P(CaseMatrix, ReadOwnedAfterSync) {
  // The sync moves T1 to a new epoch; R_x still names T1: [Read Owned].
  CaseStats S = run("T1: rd(x)\nT1: acq(m)\nT1: rd(x)\n");
  EXPECT_EQ(S.ReadOwned, 1u);
}

TEST_P(CaseMatrix, WriteOwnedAfterSync) {
  CaseStats S = run("T1: wr(x)\nT1: acq(m)\nT1: wr(x)\n");
  EXPECT_EQ(S.WriteOwned, 1u);
}

TEST_P(CaseMatrix, ReadExclusiveWhenOrdered) {
  // T2's read is ordered after T1's write via fork: stays an epoch.
  CaseStats S = run("T1: wr(x)\nT1: fork(T2)\nT2: rd(x)\n");
  EXPECT_EQ(S.ReadExclusive, 1u);
  EXPECT_EQ(S.ReadShare, 0u);
}

TEST_P(CaseMatrix, ReadShareWhenUnordered) {
  // Unordered cross-thread read inflates to a read vector: [Read Share].
  CaseStats S = run("T1: rd(x)\nT2: rd(x)\n");
  EXPECT_EQ(S.ReadShare, 1u);
}

TEST_P(CaseMatrix, ReadSharedAndSharedOwned) {
  // Three unordered readers: the third takes [Read Shared]; a repeat by
  // one of them (after a sync) takes [Read Shared Owned].
  CaseStats S = run(R"(
    T1: rd(x)
    T2: rd(x)
    T3: rd(x)
    T3: acq(m)
    T3: rd(x)
  )");
  EXPECT_EQ(S.ReadShare, 1u);
  EXPECT_EQ(S.ReadShared, 1u);
  EXPECT_EQ(S.ReadSharedOwned, 1u);
}

TEST_P(CaseMatrix, SharedSameEpochFastPath) {
  CaseStats S = run(R"(
    T1: rd(x)
    T2: rd(x)
    T2: rd(x)
  )");
  EXPECT_EQ(S.SharedSameEpoch, 1u);
}

TEST_P(CaseMatrix, WriteExclusiveCrossThread) {
  CaseStats S = run("T1: wr(x)\nT2: wr(x)\n");
  EXPECT_EQ(S.WriteExclusive, 2u) << "first write (R=⊥) and T2's write";
}

TEST_P(CaseMatrix, WriteSharedCollapsesReadVector) {
  CaseStats S = run(R"(
    T1: rd(x)
    T2: rd(x)
    T3: wr(x)
    T3: acq(m)
    T3: wr(x)
  )");
  EXPECT_EQ(S.WriteShared, 1u);
  EXPECT_EQ(S.WriteOwned, 1u) << "after collapsing, T3 owns x";
}

INSTANTIATE_TEST_SUITE_P(
    EpochAnalyses, CaseMatrix,
    ::testing::Values(AnalysisKind::FTOHB, AnalysisKind::FTOWCP,
                      AnalysisKind::FTODC, AnalysisKind::FTOWDC,
                      AnalysisKind::STWCP, AnalysisKind::STDC,
                      AnalysisKind::STWDC),
    [](const ::testing::TestParamInfo<AnalysisKind> &Info) {
      std::string Name = analysisKindName(Info.param);
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

} // namespace
