//===- tests/analysis/HBAnalysesTest.cpp - HB analysis tests --------------===//
//
// Covers Unopt-HB, FT2, and FTO-HB: agreement on race verdicts, the HB
// ordering rules (locks, fork/join, volatiles), epoch case handling, and the
// paper's race-accounting rules.
//
//===----------------------------------------------------------------------===//

#include "analysis/FT2.h"
#include "analysis/FTOHB.h"
#include "analysis/UnoptHB.h"
#include "trace/TraceText.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>

using namespace st;

namespace {

using Factory = std::function<std::unique_ptr<Analysis>()>;

struct HBParam {
  const char *Name;
  Factory Make;
};

class HBAnalyses : public ::testing::TestWithParam<HBParam> {
protected:
  std::unique_ptr<Analysis> run(const char *Text) {
    auto A = GetParam().Make();
    A->processTrace(traceFromText(Text));
    return A;
  }
};

TEST_P(HBAnalyses, NoRaceOnLockProtectedAccesses) {
  auto A = run(R"(
    T1: acq(m)
    T1: wr(x)
    T1: rel(m)
    T2: acq(m)
    T2: wr(x)
    T2: rel(m)
  )");
  EXPECT_EQ(A->dynamicRaces(), 0u);
}

TEST_P(HBAnalyses, WriteWriteRaceWithoutSync) {
  auto A = run("T1: wr(x)\nT2: wr(x)\n");
  EXPECT_EQ(A->dynamicRaces(), 1u);
}

TEST_P(HBAnalyses, WriteReadRaceWithoutSync) {
  auto A = run("T1: wr(x)\nT2: rd(x)\n");
  EXPECT_EQ(A->dynamicRaces(), 1u);
}

TEST_P(HBAnalyses, ReadWriteRaceWithoutSync) {
  auto A = run("T1: rd(x)\nT2: wr(x)\n");
  EXPECT_EQ(A->dynamicRaces(), 1u);
}

TEST_P(HBAnalyses, NoRaceOnReadRead) {
  auto A = run("T1: rd(x)\nT2: rd(x)\nT3: rd(x)\n");
  EXPECT_EQ(A->dynamicRaces(), 0u);
}

TEST_P(HBAnalyses, Figure1aHasNoHBRace) {
  // Paper Figure 1(a): rd(x) ≺HB wr(x) through the critical sections on m,
  // so HB analysis misses the predictable race.
  auto A = run(R"(
    T1: rd(x)
    T1: acq(m)
    T1: wr(y)
    T1: rel(m)
    T2: acq(m)
    T2: rd(z)
    T2: rel(m)
    T2: wr(x)
  )");
  EXPECT_EQ(A->dynamicRaces(), 0u);
}

TEST_P(HBAnalyses, ForkOrdersParentBeforeChild) {
  auto A = run(R"(
    T1: wr(x)
    T1: fork(T2)
    T2: wr(x)
  )");
  EXPECT_EQ(A->dynamicRaces(), 0u);
}

TEST_P(HBAnalyses, JoinOrdersChildBeforeParent) {
  auto A = run(R"(
    T1: fork(T2)
    T2: wr(x)
    T1: join(T2)
    T1: wr(x)
  )");
  EXPECT_EQ(A->dynamicRaces(), 0u);
}

TEST_P(HBAnalyses, SiblingsWithoutJoinRace) {
  auto A = run(R"(
    T1: fork(T2)
    T1: fork(T3)
    T2: wr(x)
    T3: wr(x)
  )");
  EXPECT_EQ(A->dynamicRaces(), 1u);
}

TEST_P(HBAnalyses, VolatileWriteReadOrders) {
  auto A = run(R"(
    T1: wr(x)
    T1: vwr(f)
    T2: vrd(f)
    T2: wr(x)
  )");
  EXPECT_EQ(A->dynamicRaces(), 0u);
}

TEST_P(HBAnalyses, VolatileReadDoesNotOrderWithoutWrite) {
  // Two volatile reads do not synchronize the threads.
  auto A = run(R"(
    T1: wr(x)
    T1: vrd(f)
    T2: vrd(f)
    T2: wr(x)
  )");
  EXPECT_EQ(A->dynamicRaces(), 1u);
}

TEST_P(HBAnalyses, VolatileWriteAfterReadOrders) {
  // vrd(f) by T1 then vwr(f) by T2: conflicting volatile accesses order
  // T1's earlier events before T2's later ones.
  auto A = run(R"(
    T1: wr(x)
    T1: vrd(f)
    T2: vwr(f)
    T2: wr(x)
  )");
  EXPECT_EQ(A->dynamicRaces(), 0u);
}

TEST_P(HBAnalyses, TransitiveOrderingThroughThirdThread) {
  // T1 -> T2 via lock m, T2 -> T3 via lock n; HB orders T1's write before
  // T3's transitively.
  auto A = run(R"(
    T1: wr(x)
    T1: acq(m)
    T1: rel(m)
    T2: acq(m)
    T2: rel(m)
    T2: acq(n)
    T2: rel(n)
    T3: acq(n)
    T3: rel(n)
    T3: wr(x)
  )");
  EXPECT_EQ(A->dynamicRaces(), 0u);
}

TEST_P(HBAnalyses, RaceCountsOncePerAccessEvent) {
  // A write racing with two concurrent last readers is one dynamic race
  // (paper §5.1).
  auto A = run(R"(
    T1: rd(x)
    T2: rd(x)
    T3: wr(x)
  )");
  EXPECT_EQ(A->dynamicRaces(), 1u);
}

TEST_P(HBAnalyses, DynamicVsStaticRaceCounting) {
  // The same static site races twice dynamically.
  auto A = GetParam().Make();
  TraceBuilder B;
  B.write(0, 0, /*Site=*/7);
  B.write(1, 0, /*Site=*/7);
  B.write(2, 0, /*Site=*/7);
  A->processTrace(B.build());
  EXPECT_EQ(A->dynamicRaces(), 2u);
  EXPECT_EQ(A->staticRaces(), 1u);
}

TEST_P(HBAnalyses, AnalysisContinuesAfterRace) {
  auto A = run(R"(
    T1: wr(x)
    T2: wr(x)
    T1: wr(y)
    T2: wr(y)
  )");
  EXPECT_EQ(A->dynamicRaces(), 2u);
  EXPECT_EQ(A->staticRaces(), 2u);
}

TEST_P(HBAnalyses, MaxStoredRacesCapsRecordsNotCounts) {
  auto A = GetParam().Make();
  A->setMaxStoredRaces(1);
  A->processTrace(traceFromText("T1: wr(x)\nT2: wr(x)\nT1: wr(y)\nT2: wr(y)\n"));
  EXPECT_EQ(A->dynamicRaces(), 2u);
  EXPECT_EQ(A->raceRecords().size(), 1u);
}

TEST_P(HBAnalyses, RaceAfterLockOnlyOnUnorderedAccess) {
  // T2's write is lock-ordered after T1's, but T3's is unordered: race.
  auto A = run(R"(
    T1: acq(m)
    T1: wr(x)
    T1: rel(m)
    T2: acq(m)
    T2: wr(x)
    T2: rel(m)
    T3: wr(x)
  )");
  EXPECT_EQ(A->dynamicRaces(), 1u);
}

TEST_P(HBAnalyses, ReadSharedThenOrderedWriteNoRace) {
  // Multiple readers inflate the read metadata; a write ordered after all
  // of them (via joins) must not race.
  auto A = run(R"(
    main: fork(T2)
    main: fork(T3)
    T2: rd(x)
    T3: rd(x)
    main: join(T2)
    main: join(T3)
    main: wr(x)
  )");
  EXPECT_EQ(A->dynamicRaces(), 0u);
}

TEST_P(HBAnalyses, ReadSharedUnorderedWriteRaces) {
  auto A = run(R"(
    main: fork(T2)
    main: fork(T3)
    T2: rd(x)
    T3: rd(x)
    main: join(T2)
    main: wr(x)
  )");
  EXPECT_EQ(A->dynamicRaces(), 1u);
}

TEST_P(HBAnalyses, FootprintGrowsWithState) {
  auto A = GetParam().Make();
  size_t Before = A->footprintBytes();
  TraceBuilder B;
  for (VarId X = 0; X < 64; ++X)
    B.write(0, X);
  A->processTrace(B.build());
  EXPECT_GT(A->footprintBytes(), Before);
}

INSTANTIATE_TEST_SUITE_P(
    All, HBAnalyses,
    ::testing::Values(
        HBParam{"UnoptHB", [] { return std::make_unique<UnoptHB>(); }},
        HBParam{"FT2", [] { return std::make_unique<FT2>(); }},
        HBParam{"FTOHB", [] { return std::make_unique<FTOHB>(); }}),
    [](const ::testing::TestParamInfo<HBParam> &Info) {
      return Info.param.Name;
    });

TEST(FTOHBTest, CaseStatsClassifyAccesses) {
  FTOHB A;
  A.processTrace(traceFromText(R"(
    T1: wr(x)
    T1: wr(x)
    T1: rd(x)
    T1: acq(m)
    T1: rd(x)
    T1: rel(m)
    T2: rd(x)
  )"));
  const CaseStats *S = A.caseStats();
  ASSERT_NE(S, nullptr);
  // First wr(x): exclusive (R_x = ⊥). Second: same epoch. rd(x): owned
  // (same epoch actually: same epoch since R updated by write). After acq
  // the epoch changed: rd(x) owned. T2's rd: unowned.
  EXPECT_EQ(S->WriteSameEpoch, 1u);
  EXPECT_EQ(S->WriteExclusive, 1u);
  EXPECT_GE(S->ReadSameEpoch, 1u);
  EXPECT_EQ(S->ReadOwned, 1u);
  EXPECT_EQ(S->ReadShare + S->ReadShared + S->ReadExclusive, 1u);
}

TEST(FTOHBTest, OwnedCasesSkipRaceChecks) {
  // The owner keeps accessing x across sync operations without races.
  FTOHB A;
  A.processTrace(traceFromText(R"(
    T1: wr(x)
    T1: acq(m)
    T1: rd(x)
    T1: wr(x)
    T1: rel(m)
    T1: rd(x)
  )"));
  EXPECT_EQ(A.dynamicRaces(), 0u);
  EXPECT_GE(A.caseStats()->ReadOwned + A.caseStats()->WriteOwned, 1u);
}

TEST(UnoptHBTest, LastWriteOrderedQueryReflectsHB) {
  UnoptHB A;
  A.processTrace(traceFromText(R"(
    T1: wr(x)
    T1: acq(m)
    T1: rel(m)
    T2: acq(m)
    T2: rel(m)
  )"));
  EXPECT_TRUE(A.lastWriteOrderedBefore(/*x=*/0, /*T2=*/1))
      << "lock edge orders T1's write before T2";
  EXPECT_FALSE(A.lastWriteOrderedBefore(/*x=*/0, /*T3=*/2))
      << "T3 never synchronized with T1";
}

TEST(FT2Test, ReadSharedSameEpochFastPath) {
  FT2 A;
  // Two reads by the same thread in one epoch after sharing: second is a
  // fast-path hit and must not be re-recorded.
  A.processTrace(traceFromText(R"(
    T1: rd(x)
    T2: rd(x)
    T2: rd(x)
    T1: rd(x)
  )"));
  EXPECT_EQ(A.dynamicRaces(), 0u);
}

} // namespace
