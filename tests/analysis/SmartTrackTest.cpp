//===- tests/analysis/SmartTrackTest.cpp - SmartTrack-specific tests ------===//
//
// Exercises Algorithm 3's machinery directly: CS lists and deferred release
// clocks, MultiCheck's held-lock joins, the [Read Share]-over-[Read
// Exclusive] behavior (Figure 4(b)), the extra metadata E^r/E^w (Figures
// 4(c,d)), the epoch acquire-queue optimization, and case statistics.
//
//===----------------------------------------------------------------------===//

#include "analysis/FTOCore.h"
#include "analysis/STCore.h"
#include "trace/TraceText.h"
#include "workload/Figures.h"

#include <gtest/gtest.h>

using namespace st;

namespace {

TEST(SmartTrackTest, Fig4aWalkthroughIsRaceFree) {
  // The paper's §4.2 walkthrough: nested critical sections on p/m/n; the
  // deferred release clocks and MultiCheck joins must order everything.
  SmartTrackDC A;
  A.processTrace(figures::fig4a());
  EXPECT_EQ(A.dynamicRaces(), 0u);
}

TEST(SmartTrackTest, Fig4aTakesReadShareWhereFTOTakesReadExclusive) {
  // At Thread 2's rd(x), the prior write's outermost critical section on p
  // is still unreleased, so SmartTrack must take [Read Share]; FTO-DC takes
  // [Read Exclusive] because the access itself is DC-ordered.
  // fig4a has three reads: rd(x) by T2 plus the rd(oVar) of each sync(o).
  // ST: rd(x) and T3's rd(oVar) take [Read Share] (their predecessors'
  // sections are unreleased or DC-unordered); T2's rd(oVar) is the first
  // access (exclusive). FTO orders all three accesses directly and never
  // shares.
  SmartTrackDC ST;
  ST.processTrace(figures::fig4a());
  EXPECT_EQ(ST.caseStats()->ReadShare, 2u);
  EXPECT_EQ(ST.caseStats()->ReadExclusive, 1u);

  FTODC FTO;
  FTO.processTrace(figures::fig4a());
  EXPECT_EQ(FTO.caseStats()->ReadExclusive, 3u);
  EXPECT_EQ(FTO.caseStats()->ReadShare, 0u);
}

TEST(SmartTrackTest, Fig4bExtendedNeedsReadShareBehavior) {
  // Without the [Read Share] behavior, ST-WDC would lose Thread 1's
  // critical section on m and report a spurious race on z (Figure 4(b)).
  SmartTrackWDC A;
  A.processTrace(figures::fig4bExtended());
  EXPECT_EQ(A.dynamicRaces(), 0u);
}

TEST(SmartTrackTest, Fig4cExtendedNeedsExtraWriteMetadata) {
  // Thread 2's un-locked wr(x) overwrites L^w_x; E^w_x must preserve
  // Thread 1's critical section (Figure 4(c)).
  SmartTrackWDC A;
  A.processTrace(figures::fig4cExtended());
  EXPECT_EQ(A.dynamicRaces(), 0u);
}

TEST(SmartTrackTest, Fig4dExtendedNeedsExtraReadMetadata) {
  // Same as fig4c but the lost section contains a read: E^r_x (Figure 4(d)).
  SmartTrackWDC A;
  A.processTrace(figures::fig4dExtended());
  EXPECT_EQ(A.dynamicRaces(), 0u);
}

TEST(SmartTrackTest, DeferredReleaseClockResolvesAcrossThreads) {
  // T2 conflicts with T1's still-open critical section on m at the time of
  // T1's wr(x); the CS-list entry is filled at rel(m) and T2's MultiCheck
  // must pick up the final clock, ordering everything.
  SmartTrackDC A;
  A.processTrace(traceFromText(R"(
    T1: acq(m)
    T1: wr(x)
    T1: rel(m)
    T2: acq(m)
    T2: wr(x)
    T2: wr(y)
    T2: rel(m)
    T1x: rd(y)
  )"));
  // T1x never synchronized: rd(y) races with T2's wr(y).
  EXPECT_EQ(A.dynamicRaces(), 1u);
}

TEST(SmartTrackTest, UnreleasedSectionNeverOrders) {
  // T1 still holds m when T2 writes x without the lock: the ∞ sentinel in
  // the CS-list clock must make the ordering check fail, and the write must
  // race with T1's read.
  SmartTrackDC A;
  A.processTrace(traceFromText(R"(
    T1: acq(m)
    T1: rd(x)
    T2: wr(x)
  )"));
  EXPECT_EQ(A.dynamicRaces(), 1u);
}

TEST(SmartTrackTest, MultiCheckJoinsInnerSectionWhenOuterUnmatched) {
  // T1's wr(x) sits in nested sections on p (outer) and m (inner); T2 holds
  // only m. MultiCheck walks outermost-to-innermost: p is unmatched (and
  // unordered), m matches and joins. No race.
  SmartTrackDC A;
  A.processTrace(traceFromText(R"(
    T1: acq(p)
    T1: acq(m)
    T1: wr(x)
    T1: rel(m)
    T1: rel(p)
    T2: acq(m)
    T2: wr(x)
    T2: rel(m)
  )"));
  EXPECT_EQ(A.dynamicRaces(), 0u);
}

TEST(SmartTrackTest, CaseStatsMatchFTOOnOwnedPatterns) {
  const char *Text = R"(
    T1: wr(x)
    T1: acq(m)
    T1: rd(x)
    T1: wr(x)
    T1: rel(m)
  )";
  SmartTrackDC ST;
  FTODC FTO;
  ST.processTrace(traceFromText(Text));
  FTO.processTrace(traceFromText(Text));
  EXPECT_EQ(ST.caseStats()->ReadOwned, FTO.caseStats()->ReadOwned);
  EXPECT_EQ(ST.caseStats()->WriteOwned, FTO.caseStats()->WriteOwned);
  EXPECT_EQ(ST.caseStats()->WriteExclusive,
            FTO.caseStats()->WriteExclusive);
}

TEST(SmartTrackTest, STWCPComposesWithHB) {
  SmartTrackWCP A;
  A.processTrace(figures::fig2a());
  EXPECT_EQ(A.dynamicRaces(), 0u) << "WCP composes with HB: no race";
  SmartTrackDC DC;
  DC.processTrace(figures::fig2a());
  EXPECT_EQ(DC.dynamicRaces(), 1u) << "DC composes with PO only: race";
}

TEST(SmartTrackTest, STDCRuleBOrdersFig3) {
  SmartTrackDC DC;
  DC.processTrace(figures::fig3());
  EXPECT_EQ(DC.dynamicRaces(), 0u);
  SmartTrackWDC WDC;
  WDC.processTrace(figures::fig3());
  EXPECT_EQ(WDC.dynamicRaces(), 1u);
}

TEST(SmartTrackTest, ExtraMetadataConsumedAtWrites) {
  // After fig4c's pattern, a later same-thread write holding m should have
  // consumed (and cleared) the extra metadata without changing verdicts.
  SmartTrackWDC A;
  Trace Tr = figures::fig4cExtended();
  A.processTrace(Tr);
  EXPECT_EQ(A.dynamicRaces(), 0u);
}

TEST(SmartTrackTest, SameEpochFastPathsCount) {
  SmartTrackDC A;
  A.processTrace(traceFromText(R"(
    T1: wr(x)
    T1: wr(x)
    T1: rd(x)
    T1: rd(x)
  )"));
  EXPECT_EQ(A.caseStats()->WriteSameEpoch, 1u);
  // After a write by the same thread in the same epoch, reads hit the
  // same-epoch path too (R_x was updated by the write).
  EXPECT_EQ(A.caseStats()->ReadSameEpoch, 2u);
}

TEST(SmartTrackTest, LocksReleasedOutOfOrderStillTracked) {
  // Hand-over-hand (non-nested) locking: acq(a); acq(b); rel(a); rel(b).
  SmartTrackDC A;
  A.processTrace(traceFromText(R"(
    T1: acq(a)
    T1: acq(b)
    T1: wr(x)
    T1: rel(a)
    T1: rel(b)
    T2: acq(b)
    T2: wr(x)
    T2: rel(b)
  )"));
  EXPECT_EQ(A.dynamicRaces(), 0u);
}

TEST(SmartTrackTest, WriteSharedChecksEveryReader) {
  // Two unordered readers, then an unordered writer: exactly one dynamic
  // race is counted at the write (paper §5.1), and the verdict matches FTO.
  SmartTrackDC ST;
  FTODC FTO;
  Trace Tr = traceFromText("T1: rd(x)\nT2: rd(x)\nT3: wr(x)\n");
  ST.processTrace(Tr);
  FTO.processTrace(Tr);
  EXPECT_EQ(ST.dynamicRaces(), 1u);
  EXPECT_EQ(FTO.dynamicRaces(), 1u);
}

TEST(SmartTrackTest, FootprintTracksCSLists) {
  SmartTrackDC A;
  size_t Empty = A.footprintBytes();
  TraceBuilder B;
  B.acq(0, 0).acq(0, 1).acq(0, 2).write(0, 0);
  A.processTrace(B.build());
  EXPECT_GT(A.footprintBytes(), Empty);
}

} // namespace
