//===- tests/analysis/ShardedParityTest.cpp - Sharded == sequential -------===//
//
// The sharded executor's correctness bar: for every shardable kind, on
// the same three seeded workloads LadderGoldenTest freezes, a run split
// across 1, 2, 4, or 8 variable shards must be bit-identical to the
// sequential core — dynamic and static race counts, the full Table 12
// case statistics, and the retained race reports in stream order.
//
//===----------------------------------------------------------------------===//

#include "analysis/sharded/ShardedAnalysis.h"
#include "report/Session.h"
#include "workload/RandomTrace.h"

#include <gtest/gtest.h>

using namespace st;

namespace {

/// Same three workload shapes as LadderGoldenTest: lock-heavy, fork/join
/// + volatiles, wide and write-heavy.
RandomTraceConfig goldenConfig(unsigned I) {
  RandomTraceConfig C;
  switch (I) {
  case 0:
    C.Seed = 1009;
    C.Threads = 4;
    C.Vars = 6;
    C.Locks = 3;
    C.Events = 600;
    C.MaxNesting = 2;
    C.PSync = 0.45;
    break;
  case 1:
    C.Seed = 424242;
    C.Threads = 5;
    C.Vars = 4;
    C.Locks = 2;
    C.Volatiles = 1;
    C.PVolatile = 0.1;
    C.Events = 500;
    C.ForkJoin = true;
    C.PSync = 0.35;
    break;
  default:
    C.Seed = 77;
    C.Threads = 8;
    C.Vars = 10;
    C.Locks = 4;
    C.Events = 800;
    C.MaxNesting = 3;
    C.PSync = 0.3;
    C.PWrite = 0.7;
    break;
  }
  return C;
}

const AnalysisKind ShardableKinds[] = {
    AnalysisKind::FTOWCP, AnalysisKind::FTODC, AnalysisKind::FTOWDC,
    AnalysisKind::STWCP,  AnalysisKind::STDC,  AnalysisKind::STWDC,
};

/// Drives \p A through \p Tr in small batches so shard plans span many
/// batch boundaries (the executor's per-batch partition/merge path).
void feedInBatches(Analysis &A, const Trace &Tr, size_t BatchSize) {
  const Event *Events = Tr.events().data();
  size_t N = Tr.size();
  for (size_t I = 0; I < N; I += BatchSize)
    A.processBatch(Events + I, std::min(BatchSize, N - I));
}

void expectSameResults(const Analysis &Seq, const Analysis &Shd,
                       const char *Ctx) {
  EXPECT_EQ(Seq.dynamicRaces(), Shd.dynamicRaces()) << Ctx;
  EXPECT_EQ(Seq.staticRaces(), Shd.staticRaces()) << Ctx;

  const CaseStats *A = Seq.caseStats();
  const CaseStats *B = Shd.caseStats();
  ASSERT_NE(A, nullptr) << Ctx;
  ASSERT_NE(B, nullptr) << Ctx;
  EXPECT_EQ(A->ReadSameEpoch, B->ReadSameEpoch) << Ctx;
  EXPECT_EQ(A->SharedSameEpoch, B->SharedSameEpoch) << Ctx;
  EXPECT_EQ(A->WriteSameEpoch, B->WriteSameEpoch) << Ctx;
  EXPECT_EQ(A->ReadOwned, B->ReadOwned) << Ctx;
  EXPECT_EQ(A->ReadSharedOwned, B->ReadSharedOwned) << Ctx;
  EXPECT_EQ(A->ReadExclusive, B->ReadExclusive) << Ctx;
  EXPECT_EQ(A->ReadShare, B->ReadShare) << Ctx;
  EXPECT_EQ(A->ReadShared, B->ReadShared) << Ctx;
  EXPECT_EQ(A->WriteOwned, B->WriteOwned) << Ctx;
  EXPECT_EQ(A->WriteExclusive, B->WriteExclusive) << Ctx;
  EXPECT_EQ(A->WriteShared, B->WriteShared) << Ctx;

  const auto &SeqR = Seq.raceRecords();
  const auto &ShdR = Shd.raceRecords();
  ASSERT_EQ(SeqR.size(), ShdR.size()) << Ctx;
  for (size_t I = 0; I != SeqR.size(); ++I) {
    EXPECT_EQ(SeqR[I].EventIdx, ShdR[I].EventIdx) << Ctx << " report " << I;
    EXPECT_EQ(SeqR[I].Var, ShdR[I].Var) << Ctx << " report " << I;
    EXPECT_EQ(SeqR[I].Tid, ShdR[I].Tid) << Ctx << " report " << I;
    EXPECT_EQ(SeqR[I].IsWrite, ShdR[I].IsWrite) << Ctx << " report " << I;
    EXPECT_EQ(SeqR[I].Site, ShdR[I].Site) << Ctx << " report " << I;
  }
}

TEST(ShardedParityTest, GoldenWorkloadsAllKindsAllShardCounts) {
  for (unsigned W = 0; W != 3; ++W) {
    Trace Tr = generateRandomTrace(goldenConfig(W));
    for (AnalysisKind K : ShardableKinds) {
      auto Seq = createAnalysis(K);
      feedInBatches(*Seq, Tr, 128);
      for (unsigned Shards : {1u, 2u, 4u, 8u}) {
        ShardedAnalysis Shd(K, Shards);
        EXPECT_STREQ(Shd.name(), Seq->name());
        feedInBatches(Shd, Tr, 128);
        std::string Ctx = std::string(analysisKindName(K)) + " workload " +
                          std::to_string(W) + " shards " +
                          std::to_string(Shards);
        expectSameResults(*Seq, Shd, Ctx.c_str());
        EXPECT_EQ(Shd.eventsProcessed(), Tr.size()) << Ctx;
      }
    }
  }
}

TEST(ShardedParityTest, PerEventPathMatchesBatchPath) {
  // Direct processEvent() callers (runtime-style) must see the same
  // results as the engine's batch path.
  Trace Tr = generateRandomTrace(goldenConfig(0));
  ShardedAnalysis Batched(AnalysisKind::STWDC, 4);
  feedInBatches(Batched, Tr, 64);
  ShardedAnalysis OneByOne(AnalysisKind::STWDC, 4);
  for (const Event &E : Tr.events())
    OneByOne.processEvent(E);
  expectSameResults(Batched, OneByOne, "per-event vs batch");
  EXPECT_EQ(OneByOne.eventsProcessed(), Tr.size());
}

TEST(ShardedParityTest, SessionShardsOptionMatchesSequentialRun) {
  Trace Tr = generateRandomTrace(goldenConfig(2));

  auto RunWith = [&](unsigned Shards) {
    SessionOptions SO;
    SO.Shards = Shards;
    SO.BatchSize = 256;
    Session S(SO);
    S.add(AnalysisKind::STWDC);
    S.add(AnalysisKind::FTOWDC);
    TraceEventSource Src(Tr);
    return S.run(Src);
  };

  RunReport Seq = RunWith(1);
  RunReport Shd = RunWith(4);
  ASSERT_EQ(Seq.Analyses.size(), Shd.Analyses.size());
  for (size_t I = 0; I != Seq.Analyses.size(); ++I) {
    const AnalysisRunResult &A = Seq.Analyses[I];
    const AnalysisRunResult &B = Shd.Analyses[I];
    EXPECT_EQ(A.Name, B.Name);
    EXPECT_EQ(A.DynamicRaces, B.DynamicRaces) << A.Name;
    EXPECT_EQ(A.StaticRaces, B.StaticRaces) << A.Name;
    ASSERT_EQ(A.Races.size(), B.Races.size()) << A.Name;
    for (size_t R = 0; R != A.Races.size(); ++R)
      EXPECT_EQ(A.Races[R].EventIdx, B.Races[R].EventIdx) << A.Name;
    EXPECT_TRUE(A.HasCaseStats);
    EXPECT_TRUE(B.HasCaseStats);
    EXPECT_EQ(A.Cases.nonSameEpochReads(), B.Cases.nonSameEpochReads());
    EXPECT_EQ(A.Cases.nonSameEpochWrites(), B.Cases.nonSameEpochWrites());
  }
}

TEST(ShardedParityTest, NonShardableKindsStaySequentialUnderShardsOption) {
  // Session::add must leave non-shardable kinds on the plain core even
  // when Shards > 1 (st-analyze rejects such combos up front; the API
  // itself degrades gracefully).
  ASSERT_FALSE(isShardable(AnalysisKind::UnoptHB));
  ASSERT_FALSE(isShardable(AnalysisKind::FT2));
  ASSERT_FALSE(isShardable(AnalysisKind::FTOHB));
  ASSERT_TRUE(isShardable(AnalysisKind::STWDC));

  Trace Tr = generateRandomTrace(goldenConfig(1));
  SessionOptions SO;
  SO.Shards = 4;
  Session S(SO);
  S.add(AnalysisKind::UnoptHB);
  TraceEventSource Src(Tr);
  RunReport Rep = S.run(Src);

  Session Plain;
  Plain.add(AnalysisKind::UnoptHB);
  TraceEventSource Src2(Tr);
  RunReport Want = Plain.run(Src2);
  ASSERT_EQ(Rep.Analyses.size(), 1u);
  EXPECT_EQ(Rep.Analyses[0].DynamicRaces, Want.Analyses[0].DynamicRaces);
  EXPECT_EQ(Rep.Analyses[0].StaticRaces, Want.Analyses[0].StaticRaces);
}

TEST(ShardedParityTest, ShardMapIsStableAndComplete) {
  for (unsigned Shards : {1u, 2u, 4u, 8u}) {
    std::vector<bool> Hit(Shards, false);
    for (VarId V = 0; V != 1024; ++V) {
      unsigned S = ShardedAnalysis::shardOf(V, Shards);
      ASSERT_LT(S, Shards);
      EXPECT_EQ(S, ShardedAnalysis::shardOf(V, Shards)); // deterministic
      Hit[S] = true;
    }
    for (unsigned S = 0; S != Shards; ++S)
      EXPECT_TRUE(Hit[S]) << "shard " << S << " never used of " << Shards;
  }
}

} // namespace
