//===- tests/analysis/ShardedParityTest.cpp - Sharded == sequential -------===//
//
// The sharded executor's correctness bar: for every shardable kind, on
// the same three seeded workloads LadderGoldenTest freezes, a run split
// across 1, 2, 4, or 8 variable shards must be bit-identical to the
// sequential core — dynamic and static race counts, the full Table 12
// case statistics, and the retained race reports in stream order.
//
//===----------------------------------------------------------------------===//

#include "analysis/sharded/ShardedAnalysis.h"
#include "report/Session.h"
#include "workload/RandomTrace.h"

#include <gtest/gtest.h>

using namespace st;

namespace {

/// Same three workload shapes as LadderGoldenTest: lock-heavy, fork/join
/// + volatiles, wide and write-heavy.
RandomTraceConfig goldenConfig(unsigned I) {
  RandomTraceConfig C;
  switch (I) {
  case 0:
    C.Seed = 1009;
    C.Threads = 4;
    C.Vars = 6;
    C.Locks = 3;
    C.Events = 600;
    C.MaxNesting = 2;
    C.PSync = 0.45;
    break;
  case 1:
    C.Seed = 424242;
    C.Threads = 5;
    C.Vars = 4;
    C.Locks = 2;
    C.Volatiles = 1;
    C.PVolatile = 0.1;
    C.Events = 500;
    C.ForkJoin = true;
    C.PSync = 0.35;
    break;
  default:
    C.Seed = 77;
    C.Threads = 8;
    C.Vars = 10;
    C.Locks = 4;
    C.Events = 800;
    C.MaxNesting = 3;
    C.PSync = 0.3;
    C.PWrite = 0.7;
    break;
  }
  return C;
}

const AnalysisKind ShardableKinds[] = {
    AnalysisKind::FTOWCP, AnalysisKind::FTODC, AnalysisKind::FTOWDC,
    AnalysisKind::STWCP,  AnalysisKind::STDC,  AnalysisKind::STWDC,
};

/// Small DSL for the hand-built adversarial traces below.
struct TraceBuilder {
  std::vector<Event> Ev;
  void w(ThreadId T, VarId V, SiteId S) {
    Ev.emplace_back(EventKind::Write, T, V, S);
  }
  void r(ThreadId T, VarId V, SiteId S) {
    Ev.emplace_back(EventKind::Read, T, V, S);
  }
  void acq(ThreadId T, LockId L) { Ev.emplace_back(EventKind::Acquire, T, L); }
  void rel(ThreadId T, LockId L) { Ev.emplace_back(EventKind::Release, T, L); }
  void vw(ThreadId T, VarId V) { Ev.emplace_back(EventKind::VolWrite, T, V); }
  void vr(ThreadId T, VarId V) { Ev.emplace_back(EventKind::VolRead, T, V); }
  void fork(ThreadId T, ThreadId C) {
    Ev.emplace_back(EventKind::Fork, T, C);
  }
  void join(ThreadId T, ThreadId C) {
    Ev.emplace_back(EventKind::Join, T, C);
  }
  Trace build() { return Trace(std::move(Ev)); }
};

/// Very long critical sections: each thread's CS spans dozens of
/// accesses over several variables, so coalesced runs grow long and
/// break only where ownership moves to another shard. The unlocked
/// writes to var 5 are a guaranteed race, keeping the parity check
/// non-vacuous for every kind.
Trace longCriticalSectionTrace() {
  TraceBuilder B;
  B.w(0, 5, 900); // races with T1's unlocked write below
  for (ThreadId T : {0u, 1u, 2u}) {
    B.acq(T, 0);
    for (unsigned I = 0; I != 64; ++I) {
      if (I & 1)
        B.r(T, I % 7, 100 + I % 5);
      else
        B.w(T, I % 7, 200 + I % 5);
    }
    B.rel(T, 0);
  }
  B.w(1, 5, 901);
  return B.build();
}

/// Nested and overlapping lock scopes: T0 nests L0 > L1 > L2 with
/// accesses at every depth, then releases hand-over-hand (rel L0 while
/// still holding L1/L2) so the partitioner's lock-depth tracking sees
/// non-LIFO release order; T1's CSs interleave in trace order, chopping
/// T0's runs with foreign acquires/releases.
Trace nestedLockTrace() {
  TraceBuilder B;
  B.acq(0, 0);
  B.w(0, 0, 10);
  B.acq(0, 1);
  B.w(0, 1, 11);
  B.acq(1, 3); // foreign sync splits T0's open run
  B.w(1, 8, 30);
  B.acq(0, 2);
  B.w(0, 2, 12);
  B.r(0, 0, 13);
  B.rel(0, 0); // hand-over-hand: released before the inner locks
  B.w(0, 3, 14);
  B.rel(1, 3);
  B.w(0, 4, 15);
  B.rel(0, 2);
  B.r(0, 1, 16);
  B.rel(0, 1);
  B.acq(1, 0);
  B.w(1, 0, 31);
  B.w(1, 1, 32);
  B.rel(1, 0);
  return B.build();
}

/// Runs interrupted by every sync flavor: T0's single long critical
/// section is punctured by T1 volatiles, a fork/join of T2, and T1's
/// own lock ops — each must close T0's open run and replay on every
/// shard at the same global index.
Trace syncInterruptedRunTrace() {
  TraceBuilder B;
  B.acq(0, 0);
  B.w(0, 0, 40);
  B.w(0, 1, 41);
  B.vw(1, 0); // volatile write splits the run
  B.w(0, 2, 42);
  B.r(0, 0, 43);
  B.fork(1, 2); // fork splits the run
  B.w(2, 6, 60);
  B.w(0, 3, 44);
  B.vr(1, 0);
  B.w(0, 4, 45);
  B.acq(1, 1);
  B.r(1, 7, 50);
  B.rel(1, 1);
  B.w(0, 5, 46);
  B.join(1, 2); // join splits the run
  B.w(0, 0, 47);
  B.rel(0, 0);
  return B.build();
}

/// Drives \p A through \p Tr in small batches so shard plans span many
/// batch boundaries (the executor's per-batch partition/merge path).
void feedInBatches(Analysis &A, const Trace &Tr, size_t BatchSize) {
  const Event *Events = Tr.events().data();
  size_t N = Tr.size();
  for (size_t I = 0; I < N; I += BatchSize)
    A.processBatch(Events + I, std::min(BatchSize, N - I));
}

void expectSameResults(const Analysis &Seq, const Analysis &Shd,
                       const char *Ctx) {
  EXPECT_EQ(Seq.dynamicRaces(), Shd.dynamicRaces()) << Ctx;
  EXPECT_EQ(Seq.staticRaces(), Shd.staticRaces()) << Ctx;

  const CaseStats *A = Seq.caseStats();
  const CaseStats *B = Shd.caseStats();
  ASSERT_NE(A, nullptr) << Ctx;
  ASSERT_NE(B, nullptr) << Ctx;
  EXPECT_EQ(A->ReadSameEpoch, B->ReadSameEpoch) << Ctx;
  EXPECT_EQ(A->SharedSameEpoch, B->SharedSameEpoch) << Ctx;
  EXPECT_EQ(A->WriteSameEpoch, B->WriteSameEpoch) << Ctx;
  EXPECT_EQ(A->ReadOwned, B->ReadOwned) << Ctx;
  EXPECT_EQ(A->ReadSharedOwned, B->ReadSharedOwned) << Ctx;
  EXPECT_EQ(A->ReadExclusive, B->ReadExclusive) << Ctx;
  EXPECT_EQ(A->ReadShare, B->ReadShare) << Ctx;
  EXPECT_EQ(A->ReadShared, B->ReadShared) << Ctx;
  EXPECT_EQ(A->WriteOwned, B->WriteOwned) << Ctx;
  EXPECT_EQ(A->WriteExclusive, B->WriteExclusive) << Ctx;
  EXPECT_EQ(A->WriteShared, B->WriteShared) << Ctx;

  const auto &SeqR = Seq.raceRecords();
  const auto &ShdR = Shd.raceRecords();
  ASSERT_EQ(SeqR.size(), ShdR.size()) << Ctx;
  for (size_t I = 0; I != SeqR.size(); ++I) {
    EXPECT_EQ(SeqR[I].EventIdx, ShdR[I].EventIdx) << Ctx << " report " << I;
    EXPECT_EQ(SeqR[I].Var, ShdR[I].Var) << Ctx << " report " << I;
    EXPECT_EQ(SeqR[I].Tid, ShdR[I].Tid) << Ctx << " report " << I;
    EXPECT_EQ(SeqR[I].IsWrite, ShdR[I].IsWrite) << Ctx << " report " << I;
    EXPECT_EQ(SeqR[I].Site, ShdR[I].Site) << Ctx << " report " << I;
  }
}

TEST(ShardedParityTest, GoldenWorkloadsAllKindsAllShardCounts) {
  for (unsigned W = 0; W != 3; ++W) {
    Trace Tr = generateRandomTrace(goldenConfig(W));
    for (AnalysisKind K : ShardableKinds) {
      auto Seq = createAnalysis(K);
      feedInBatches(*Seq, Tr, 128);
      for (unsigned Shards : {1u, 2u, 4u, 8u}) {
        ShardedAnalysis Shd(K, Shards);
        EXPECT_STREQ(Shd.name(), Seq->name());
        feedInBatches(Shd, Tr, 128);
        std::string Ctx = std::string(analysisKindName(K)) + " workload " +
                          std::to_string(W) + " shards " +
                          std::to_string(Shards);
        expectSameResults(*Seq, Shd, Ctx.c_str());
        EXPECT_EQ(Shd.eventsProcessed(), Tr.size()) << Ctx;
      }
    }
  }
}

TEST(ShardedParityTest, PerEventPathMatchesBatchPath) {
  // Direct processEvent() callers (runtime-style) must see the same
  // results as the engine's batch path.
  Trace Tr = generateRandomTrace(goldenConfig(0));
  ShardedAnalysis Batched(AnalysisKind::STWDC, 4);
  feedInBatches(Batched, Tr, 64);
  ShardedAnalysis OneByOne(AnalysisKind::STWDC, 4);
  for (const Event &E : Tr.events())
    OneByOne.processEvent(E);
  expectSameResults(Batched, OneByOne, "per-event vs batch");
  EXPECT_EQ(OneByOne.eventsProcessed(), Tr.size());
}

TEST(ShardedParityTest, SessionShardsOptionMatchesSequentialRun) {
  Trace Tr = generateRandomTrace(goldenConfig(2));

  auto RunWith = [&](unsigned Shards) {
    SessionOptions SO;
    SO.Shards = Shards;
    SO.BatchSize = 256;
    Session S(SO);
    S.add(AnalysisKind::STWDC);
    S.add(AnalysisKind::FTOWDC);
    TraceEventSource Src(Tr);
    return S.run(Src);
  };

  RunReport Seq = RunWith(1);
  RunReport Shd = RunWith(4);
  ASSERT_EQ(Seq.Analyses.size(), Shd.Analyses.size());
  for (size_t I = 0; I != Seq.Analyses.size(); ++I) {
    const AnalysisRunResult &A = Seq.Analyses[I];
    const AnalysisRunResult &B = Shd.Analyses[I];
    EXPECT_EQ(A.Name, B.Name);
    EXPECT_EQ(A.DynamicRaces, B.DynamicRaces) << A.Name;
    EXPECT_EQ(A.StaticRaces, B.StaticRaces) << A.Name;
    ASSERT_EQ(A.Races.size(), B.Races.size()) << A.Name;
    for (size_t R = 0; R != A.Races.size(); ++R)
      EXPECT_EQ(A.Races[R].EventIdx, B.Races[R].EventIdx) << A.Name;
    EXPECT_TRUE(A.HasCaseStats);
    EXPECT_TRUE(B.HasCaseStats);
    EXPECT_EQ(A.Cases.nonSameEpochReads(), B.Cases.nonSameEpochReads());
    EXPECT_EQ(A.Cases.nonSameEpochWrites(), B.Cases.nonSameEpochWrites());
  }
}

TEST(ShardedParityTest, NonShardableKindsStaySequentialUnderShardsOption) {
  // Session::add must leave non-shardable kinds on the plain core even
  // when Shards > 1 (st-analyze rejects such combos up front; the API
  // itself degrades gracefully).
  ASSERT_FALSE(isShardable(AnalysisKind::UnoptHB));
  ASSERT_FALSE(isShardable(AnalysisKind::FT2));
  ASSERT_FALSE(isShardable(AnalysisKind::FTOHB));
  ASSERT_TRUE(isShardable(AnalysisKind::STWDC));

  Trace Tr = generateRandomTrace(goldenConfig(1));
  SessionOptions SO;
  SO.Shards = 4;
  Session S(SO);
  S.add(AnalysisKind::UnoptHB);
  TraceEventSource Src(Tr);
  RunReport Rep = S.run(Src);

  Session Plain;
  Plain.add(AnalysisKind::UnoptHB);
  TraceEventSource Src2(Tr);
  RunReport Want = Plain.run(Src2);
  ASSERT_EQ(Rep.Analyses.size(), 1u);
  EXPECT_EQ(Rep.Analyses[0].DynamicRaces, Want.Analyses[0].DynamicRaces);
  EXPECT_EQ(Rep.Analyses[0].StaticRaces, Want.Analyses[0].StaticRaces);
}

TEST(ShardedParityTest, AdversarialCoalescingWorkloads) {
  // The coalescing partitioner's edge cases, deterministic by
  // construction: long critical sections (long runs), nested and
  // hand-over-hand lock scopes (lock-depth bookkeeping), and runs
  // punctured by volatiles, fork/join, and foreign lock ops. Batch
  // size 7 additionally splits every long run across batch boundaries;
  // 64 keeps runs whole within a batch.
  struct NamedTrace {
    const char *Name;
    Trace Tr;
  };
  const NamedTrace Traces[] = {
      {"long-critical-sections", longCriticalSectionTrace()},
      {"nested-overlapping-locks", nestedLockTrace()},
      {"sync-interrupted-runs", syncInterruptedRunTrace()},
  };
  for (const NamedTrace &NT : Traces) {
    for (AnalysisKind K : ShardableKinds) {
      auto Seq = createAnalysis(K);
      Seq->processBatch(NT.Tr.events().data(), NT.Tr.size());
      for (unsigned Shards : {1u, 2u, 4u, 8u}) {
        for (size_t Batch : {size_t(7), size_t(64)}) {
          ShardedAnalysis Shd(K, Shards);
          feedInBatches(Shd, NT.Tr, Batch);
          std::string Ctx = std::string(NT.Name) + " " +
                            analysisKindName(K) + " shards " +
                            std::to_string(Shards) + " batch " +
                            std::to_string(Batch);
          expectSameResults(*Seq, Shd, Ctx.c_str());
          EXPECT_EQ(Shd.eventsProcessed(), NT.Tr.size()) << Ctx;
        }
      }
    }
  }

  // The unlocked write pair in the long-CS trace must race under every
  // kind, so the parity above is never comparing empty reports.
  for (AnalysisKind K : ShardableKinds) {
    auto Seq = createAnalysis(K);
    Seq->processBatch(Traces[0].Tr.events().data(), Traces[0].Tr.size());
    EXPECT_GT(Seq->dynamicRaces(), 0u) << analysisKindName(K);
  }
}

TEST(ShardedParityTest, ProtocolAndHandoffVariantsStayExact) {
  // The per-access legacy protocol, the pure-condvar handoff, and
  // pinned workers change scheduling and publication granularity —
  // never results. Each variant must match the sequential core on a
  // golden workload, fed with an odd batch size so coalesced runs
  // split across batches.
  Trace Tr = generateRandomTrace(goldenConfig(0));
  auto Seq = createAnalysis(AnalysisKind::STWDC);
  feedInBatches(*Seq, Tr, 128);

  struct Variant {
    const char *Name;
    bool Coalesce;
    bool Pin;
    unsigned Spin;
  };
  const Variant Variants[] = {
      {"legacy-per-access", false, false, 4096},
      {"pure-condvar", true, false, 0},
      {"pinned-workers", true, true, 4096},
      {"legacy-condvar", false, false, 0},
  };
  for (const Variant &V : Variants) {
    for (unsigned Shards : {2u, 4u}) {
      ShardedOptions O;
      O.NumShards = Shards;
      O.CoalesceDeltas = V.Coalesce;
      O.PinWorkers = V.Pin;
      O.SpinIterations = V.Spin;
      ShardedAnalysis Shd(AnalysisKind::STWDC, O);
      feedInBatches(Shd, Tr, 13);
      std::string Ctx =
          std::string(V.Name) + " shards " + std::to_string(Shards);
      expectSameResults(*Seq, Shd, Ctx.c_str());
    }
  }
}

TEST(ShardedParityTest, ShardMapIsStableAndComplete) {
  for (unsigned Shards : {1u, 2u, 4u, 8u}) {
    std::vector<bool> Hit(Shards, false);
    for (VarId V = 0; V != 1024; ++V) {
      unsigned S = ShardedAnalysis::shardOf(V, Shards);
      ASSERT_LT(S, Shards);
      EXPECT_EQ(S, ShardedAnalysis::shardOf(V, Shards)); // deterministic
      Hit[S] = true;
    }
    for (unsigned S = 0; S != Shards; ++S)
      EXPECT_TRUE(Hit[S]) << "shard " << S << " never used of " << Shards;
  }

  // Pin the fixed-point range map itself (V * 2654435761 scaled into
  // [0, N) by the high half of the product). Placement is an internal
  // detail with no cross-version compatibility promise, but a silent
  // remap would invalidate any shard-indexed expectation elsewhere, so
  // a remap must show up here as a deliberate edit.
  EXPECT_EQ(ShardedAnalysis::shardOf(0, 8), 0u);
  EXPECT_EQ(ShardedAnalysis::shardOf(1, 8), 4u);
  EXPECT_EQ(ShardedAnalysis::shardOf(2, 8), 1u);
  EXPECT_EQ(ShardedAnalysis::shardOf(3, 8), 6u);
  EXPECT_EQ(ShardedAnalysis::shardOf(4, 8), 3u);
  EXPECT_EQ(ShardedAnalysis::shardOf(7, 8), 2u);
  EXPECT_EQ(ShardedAnalysis::shardOf(1, 2), 1u);
  EXPECT_EQ(ShardedAnalysis::shardOf(3, 4), 3u);
  EXPECT_EQ(ShardedAnalysis::shardOf(1000, 5), 0u);
  EXPECT_EQ(ShardedAnalysis::shardOf(12345, 5), 3u);
  EXPECT_EQ(ShardedAnalysis::shardOf(999999, 5), 1u);
}

} // namespace
