//===- tests/analysis/PredictiveUnoptTest.cpp - Unopt WCP/DC/WDC tests ----===//
//
// Exercises the unoptimized predictive analyses (Algorithm 1 and variants):
// figure verdicts from the paper, rule (a) and rule (b) behavior, WCP's HB
// composition, and the constraint-graph recording of the w/G configurations.
//
//===----------------------------------------------------------------------===//

#include "analysis/UnoptDC.h"
#include "analysis/UnoptWCP.h"
#include "graph/EdgeRecorder.h"
#include "trace/TraceText.h"
#include "workload/Figures.h"

#include <gtest/gtest.h>

using namespace st;

namespace {

uint64_t racesDC(const Trace &Tr) {
  UnoptDC A(UnoptDC::Options{/*RuleB=*/true, nullptr});
  A.processTrace(Tr);
  return A.dynamicRaces();
}

uint64_t racesWDC(const Trace &Tr) {
  UnoptDC A(UnoptDC::Options{/*RuleB=*/false, nullptr});
  A.processTrace(Tr);
  return A.dynamicRaces();
}

uint64_t racesWCP(const Trace &Tr) {
  UnoptWCP A;
  A.processTrace(Tr);
  return A.dynamicRaces();
}

TEST(UnoptPredictiveFigures, Fig1aVerdicts) {
  // Figure 1(a): predictable race on x; WCP, DC, and WDC all detect it.
  Trace Tr = figures::fig1a();
  EXPECT_EQ(racesWCP(Tr), 1u);
  EXPECT_EQ(racesDC(Tr), 1u);
  EXPECT_EQ(racesWDC(Tr), 1u);
}

TEST(UnoptPredictiveFigures, Fig2aVerdicts) {
  // Figure 2(a): a DC-race but no WCP-race (WCP composes with HB).
  Trace Tr = figures::fig2a();
  EXPECT_EQ(racesWCP(Tr), 0u);
  EXPECT_EQ(racesDC(Tr), 1u);
  EXPECT_EQ(racesWDC(Tr), 1u);
}

TEST(UnoptPredictiveFigures, Fig3Verdicts) {
  // Figure 3: WDC-race only; rule (b) orders the critical sections for DC
  // (and WCP), so neither reports a race.
  Trace Tr = figures::fig3();
  EXPECT_EQ(racesWCP(Tr), 0u);
  EXPECT_EQ(racesDC(Tr), 0u);
  EXPECT_EQ(racesWDC(Tr), 1u);
}

TEST(UnoptPredictiveFigures, Fig4RaceFreeUnderAllRelations) {
  for (const Trace &Tr :
       {figures::fig4a(), figures::fig4b(), figures::fig4c(),
        figures::fig4d(), figures::fig4bExtended(), figures::fig4cExtended(),
        figures::fig4dExtended()}) {
    EXPECT_EQ(racesWCP(Tr), 0u);
    EXPECT_EQ(racesDC(Tr), 0u);
    EXPECT_EQ(racesWDC(Tr), 0u);
  }
}

TEST(UnoptPredictive, RuleAOrdersConflictingCriticalSections) {
  // Both critical sections access x, so rel(m)1 orders before the second
  // access: no race, under all three relations.
  const char *Text = R"(
    T1: acq(m)
    T1: wr(x)
    T1: rel(m)
    T2: acq(m)
    T2: wr(x)
    T2: rel(m)
  )";
  Trace Tr = traceFromText(Text);
  EXPECT_EQ(racesWCP(Tr), 0u);
  EXPECT_EQ(racesDC(Tr), 0u);
  EXPECT_EQ(racesWDC(Tr), 0u);
}

TEST(UnoptPredictive, NonConflictingCriticalSectionsDoNotOrder) {
  // The critical sections touch different variables: unlike HB, predictive
  // relations leave the x accesses unordered.
  const char *Text = R"(
    T1: wr(x)
    T1: acq(m)
    T1: wr(y)
    T1: rel(m)
    T2: acq(m)
    T2: wr(z)
    T2: rel(m)
    T2: wr(x)
  )";
  Trace Tr = traceFromText(Text);
  EXPECT_EQ(racesWCP(Tr), 1u);
  EXPECT_EQ(racesDC(Tr), 1u);
  EXPECT_EQ(racesWDC(Tr), 1u);
}

TEST(UnoptPredictive, RuleAOrdersReleaseToAccessNotWholeSection) {
  // WCP/DC rule (a) orders the first *release* to the second conflicting
  // access; accesses before the first release stay unordered with accesses
  // before the second access. Here both threads write x inside CSs on m and
  // also write u outside: u's accesses remain unordered.
  const char *Text = R"(
    T1: wr(u)
    T1: acq(m)
    T1: wr(x)
    T1: rel(m)
    T2: acq(m)
    T2: wr(x)
    T2: wr(u)
    T2: rel(m)
  )";
  Trace Tr = traceFromText(Text);
  // T2's wr(u) happens after T2's wr(x), which is ordered after rel(m)T1,
  // after T1's wr(u): so actually ordered. Flip: T2 writes u before wr(x).
  EXPECT_EQ(racesDC(Tr), 0u);
  const char *Text2 = R"(
    T1: wr(u)
    T1: acq(m)
    T1: wr(x)
    T1: rel(m)
    T2: acq(m)
    T2: wr(u)
    T2: wr(x)
    T2: rel(m)
  )";
  Trace Tr2 = traceFromText(Text2);
  EXPECT_EQ(racesWCP(Tr2), 1u) << "wr(u) precedes the ordering point";
  EXPECT_EQ(racesDC(Tr2), 1u);
  EXPECT_EQ(racesWDC(Tr2), 1u);
}

TEST(UnoptPredictive, WriteReadConflictInCriticalSections) {
  const char *Text = R"(
    T1: acq(m)
    T1: wr(x)
    T1: rel(m)
    T2: acq(m)
    T2: rd(x)
    T2: rel(m)
  )";
  Trace Tr = traceFromText(Text);
  EXPECT_EQ(racesDC(Tr), 0u);
  EXPECT_EQ(racesWCP(Tr), 0u);
}

TEST(UnoptPredictive, ReadReadInCriticalSectionsDoesNotOrder) {
  // Two reads don't conflict; the critical sections add no ordering, so the
  // later write by T1 races with T2's read... actually T2's read precedes
  // T1's write in trace order; the write's check against R_x catches it.
  const char *Text = R"(
    T1: acq(m)
    T1: rd(x)
    T1: rel(m)
    T2: acq(m)
    T2: rd(x)
    T2: rel(m)
    T1: wr(x)
  )";
  Trace Tr = traceFromText(Text);
  EXPECT_EQ(racesDC(Tr), 1u) << "read-read CSs leave T2's rd unordered "
                                "with T1's wr";
  EXPECT_EQ(racesWCP(Tr), 1u);
  EXPECT_EQ(racesWDC(Tr), 1u);
}

TEST(UnoptPredictive, HardEdgesForkJoinRespected) {
  const char *Text = R"(
    T1: wr(x)
    T1: fork(T2)
    T2: wr(x)
    T1: join(T2)
    T1: rd(x)
  )";
  Trace Tr = traceFromText(Text);
  EXPECT_EQ(racesWCP(Tr), 0u);
  EXPECT_EQ(racesDC(Tr), 0u);
  EXPECT_EQ(racesWDC(Tr), 0u);
}

TEST(UnoptPredictive, HardEdgesVolatilesRespected) {
  const char *Text = R"(
    T1: wr(x)
    T1: vwr(f)
    T2: vrd(f)
    T2: wr(x)
  )";
  Trace Tr = traceFromText(Text);
  EXPECT_EQ(racesWCP(Tr), 0u);
  EXPECT_EQ(racesDC(Tr), 0u);
  EXPECT_EQ(racesWDC(Tr), 0u);
}

TEST(UnoptPredictive, WCPComposesWithHBButDCDoesNot) {
  // T1 and T2 conflict in CSs on m (rule (a) edge rel(m)1 -> rd(y)2); T2
  // then syncs with T3 through empty CSs on n (pure HB). WCP orders T1's
  // early rd(x) before T3's wr(x); DC does not.
  Trace Tr = figures::fig2a();
  EXPECT_EQ(racesWCP(Tr), 0u);
  EXPECT_EQ(racesDC(Tr), 1u);
}

TEST(UnoptPredictive, DCRuleBNeedsContainedOrdering) {
  // Rule (b) fires only when the first critical section's *acquire* is
  // DC-ordered before the second's release. fig3 is the positive case; this
  // is a negative case: no ordering between the CS bodies, rule (b) silent.
  const char *Text = R"(
    T1: acq(m)
    T1: wr(a)
    T1: rel(m)
    T2: acq(m)
    T2: wr(b)
    T2: rel(m)
    T1: wr(x)
    T2: wr(x)
  )";
  Trace Tr = traceFromText(Text);
  EXPECT_EQ(racesDC(Tr), 1u);
}

TEST(UnoptPredictive, StaticVsDynamicCounts) {
  UnoptDC A(UnoptDC::Options{true, nullptr});
  TraceBuilder B;
  B.write(0, 0, /*Site=*/1);
  B.write(1, 0, /*Site=*/1);
  B.write(2, 0, /*Site=*/1);
  B.write(0, 1, /*Site=*/2);
  B.write(1, 1, /*Site=*/2);
  A.processTrace(B.build());
  EXPECT_EQ(A.dynamicRaces(), 3u);
  EXPECT_EQ(A.staticRaces(), 2u);
}

TEST(UnoptPredictive, NamesReflectConfiguration) {
  EdgeRecorder G;
  EXPECT_STREQ(UnoptDC(UnoptDC::Options{true, nullptr}).name(), "Unopt-DC");
  EXPECT_STREQ(UnoptDC(UnoptDC::Options{true, &G}).name(), "Unopt-DC w/G");
  EXPECT_STREQ(UnoptDC(UnoptDC::Options{false, nullptr}).name(), "Unopt-WDC");
  EXPECT_STREQ(UnoptDC(UnoptDC::Options{false, &G}).name(), "Unopt-WDC w/G");
  EXPECT_STREQ(UnoptWCP().name(), "Unopt-WCP");
}

TEST(UnoptPredictiveGraph, RecordsRuleAEdges) {
  EdgeRecorder G;
  UnoptDC A(UnoptDC::Options{true, &G});
  A.processTrace(traceFromText(R"(
    T1: acq(m)
    T1: wr(x)
    T1: rel(m)
    T2: acq(m)
    T2: wr(x)
    T2: rel(m)
  )"));
  bool SawRuleA = false;
  for (const GraphEdge &E : G.edges())
    if (E.Kind == EdgeKind::RuleA) {
      SawRuleA = true;
      EXPECT_EQ(E.Src, 2u) << "edge source is rel(m) by T1";
      EXPECT_EQ(E.Dst, 4u) << "edge target is T2's wr(x)";
    }
  EXPECT_TRUE(SawRuleA);
}

TEST(UnoptPredictiveGraph, RecordsRuleBEdgesOnFig3) {
  EdgeRecorder G;
  UnoptDC A(UnoptDC::Options{true, &G});
  A.processTrace(figures::fig3());
  bool SawRuleB = false;
  for (const GraphEdge &E : G.edges())
    SawRuleB |= E.Kind == EdgeKind::RuleB;
  EXPECT_TRUE(SawRuleB) << "fig3's DC verdict depends on a rule (b) edge";
}

TEST(UnoptPredictiveGraph, RecordsHardEdges) {
  EdgeRecorder G;
  UnoptDC A(UnoptDC::Options{true, &G});
  A.processTrace(traceFromText(R"(
    T1: fork(T2)
    T2: wr(x)
    T1: join(T2)
    T1: vwr(f)
    T2x: vrd(f)
  )"));
  unsigned Hard = 0;
  for (const GraphEdge &E : G.edges())
    Hard += E.Kind == EdgeKind::Hard;
  EXPECT_GE(Hard, 3u) << "fork, join, and volatile edges";
}

TEST(UnoptPredictiveGraph, GraphCostsMemory) {
  EdgeRecorder G;
  UnoptDC WithG(UnoptDC::Options{true, &G});
  UnoptDC WithoutG(UnoptDC::Options{true, nullptr});
  Trace Tr = figures::fig4a();
  WithG.processTrace(Tr);
  WithoutG.processTrace(Tr);
  EXPECT_GT(WithG.footprintBytes(), WithoutG.footprintBytes());
}

TEST(UnoptPredictive, WDCSkipsRuleBWork) {
  // WDC must not pay rule (b) queue memory.
  UnoptDC DC(UnoptDC::Options{true, nullptr});
  UnoptDC WDC(UnoptDC::Options{false, nullptr});
  TraceBuilder B;
  for (int I = 0; I < 50; ++I) {
    B.acq(0, 0).rel(0, 0);
    B.acq(1, 0).rel(1, 0);
  }
  Trace Tr = B.build();
  DC.processTrace(Tr);
  WDC.processTrace(Tr);
  EXPECT_GT(DC.footprintBytes(), WDC.footprintBytes());
}

TEST(UnoptPredictive, OrderingQueryReflectsRuleA) {
  UnoptDC A(UnoptDC::Options{true, nullptr});
  A.processTrace(traceFromText(R"(
    T1: acq(m)
    T1: wr(x)
    T1: rel(m)
    T2: acq(m)
    T2: rd(x)
  )"));
  EXPECT_TRUE(A.lastWritesOrderedBefore(/*x=*/0, /*T2=*/1));
  EXPECT_FALSE(A.lastWritesOrderedBefore(/*x=*/0, /*T3=*/2));
}

} // namespace
