//===- tests/analysis/RuleBLogTest.cpp - Rule-(b) queue unit tests --------===//
//
// Direct tests of the acquire/release history behind DC/WCP rule (b):
// drain ordering, per-releaser vs shared cursors, dynamic thread discovery
// (late releasers see earlier acquires), and storage reclamation.
//
//===----------------------------------------------------------------------===//

#include "analysis/RuleBLog.h"

#include <gtest/gtest.h>

using namespace st;

namespace {

VectorClock vc(std::initializer_list<std::pair<ThreadId, ClockValue>> Vals) {
  VectorClock C;
  for (auto [T, V] : Vals)
    C.set(T, V);
  return C;
}

TEST(RuleBLogTest, DrainsOrderedAcquiresInOrder) {
  RuleBLog<VectorClock> Log(/*PerReleaserCursors=*/true);
  // Thread 1 runs two critical sections.
  Log.onAcquire(1, vc({{1, 1}}));
  Log.onRelease(1, vc({{1, 2}}), 10);
  Log.onAcquire(1, vc({{1, 5}}));
  Log.onRelease(1, vc({{1, 6}}), 20);

  // Thread 0's clock knows thread 1 up to time 3: only the first acquire
  // is ordered.
  VectorClock C0 = vc({{0, 9}, {1, 3}});
  std::vector<uint64_t> Seen;
  Log.drainOrdered(0, C0, [&](const VectorClock &Rel, uint64_t RelIdx) {
    Seen.push_back(RelIdx);
    EXPECT_EQ(Rel.get(1), 2u);
  });
  EXPECT_EQ(Seen, std::vector<uint64_t>({10}));

  // Once thread 0 learns more of thread 1, the second acquire drains too.
  C0.set(1, 5);
  Seen.clear();
  Log.drainOrdered(0, C0, [&](const VectorClock &, uint64_t RelIdx) {
    Seen.push_back(RelIdx);
  });
  EXPECT_EQ(Seen, std::vector<uint64_t>({20}));
}

TEST(RuleBLogTest, UnorderedFrontBlocksLaterEntries) {
  // FIFO semantics: if the front is unordered, later (even orderable)
  // entries must wait — matching Algorithm 1's while-front loop.
  RuleBLog<VectorClock> Log(/*PerReleaserCursors=*/true);
  Log.onAcquire(1, vc({{1, 5}, {2, 7}})); // knows thread 2's time 7
  Log.onRelease(1, vc({{1, 6}}), 1);
  Log.onAcquire(1, vc({{1, 8}}));
  Log.onRelease(1, vc({{1, 9}}), 2);

  VectorClock C0 = vc({{1, 9}}); // knows thread 1 fully, thread 2 not
  unsigned Drained = 0;
  Log.drainOrdered(0, C0, [&](const VectorClock &, uint64_t) { ++Drained; });
  EXPECT_EQ(Drained, 0u) << "front entry requires thread 2 knowledge";
}

TEST(RuleBLogTest, PerReleaserCursorsAreIndependent) {
  RuleBLog<VectorClock> Log(/*PerReleaserCursors=*/true);
  Log.onAcquire(2, vc({{2, 1}}));
  Log.onRelease(2, vc({{2, 2}}), 5);

  VectorClock Knows = vc({{2, 4}});
  unsigned A = 0, B = 0;
  Log.drainOrdered(0, Knows, [&](const VectorClock &, uint64_t) { ++A; });
  Log.drainOrdered(0, Knows, [&](const VectorClock &, uint64_t) { ++A; });
  Log.drainOrdered(1, Knows, [&](const VectorClock &, uint64_t) { ++B; });
  EXPECT_EQ(A, 1u) << "releaser 0 dequeues once";
  EXPECT_EQ(B, 1u) << "releaser 1 has its own cursor (DC semantics)";
}

TEST(RuleBLogTest, SharedCursorDequeuesDestructively) {
  RuleBLog<VectorClock> Log(/*PerReleaserCursors=*/false);
  Log.onAcquire(2, vc({{2, 1}}));
  Log.onRelease(2, vc({{2, 2}}), 5);

  VectorClock Knows = vc({{2, 4}});
  unsigned A = 0, B = 0;
  Log.drainOrdered(0, Knows, [&](const VectorClock &, uint64_t) { ++A; });
  Log.drainOrdered(1, Knows, [&](const VectorClock &, uint64_t) { ++B; });
  EXPECT_EQ(A, 1u);
  EXPECT_EQ(B, 0u) << "WCP semantics: one shared queue per acquirer";
}

TEST(RuleBLogTest, ReleaserSkipsItsOwnAcquires) {
  RuleBLog<VectorClock> Log(/*PerReleaserCursors=*/true);
  Log.onAcquire(0, vc({{0, 1}}));
  Log.onRelease(0, vc({{0, 2}}), 1);
  unsigned Drained = 0;
  Log.drainOrdered(0, vc({{0, 99}}),
                   [&](const VectorClock &, uint64_t) { ++Drained; });
  EXPECT_EQ(Drained, 0u) << "foreach t' != t";
}

TEST(RuleBLogTest, LateReleaserSeesEarlierAcquires) {
  // Dynamic thread discovery: thread 5 releases for the first time long
  // after thread 1's acquires; it must still drain them (Figure 3 needs
  // this).
  RuleBLog<VectorClock> Log(/*PerReleaserCursors=*/true);
  for (ClockValue I = 1; I <= 5; ++I) {
    Log.onAcquire(1, vc({{1, I * 10}}));
    Log.onRelease(1, vc({{1, I * 10 + 1}}), I);
  }
  unsigned Drained = 0;
  Log.drainOrdered(5, vc({{1, 1000}}),
                   [&](const VectorClock &, uint64_t) { ++Drained; });
  EXPECT_EQ(Drained, 5u);
}

TEST(RuleBLogTest, EpochVariantChecksAcquirerEntryOnly) {
  RuleBLog<Epoch> Log(/*PerReleaserCursors=*/true);
  Log.onAcquire(1, Epoch::make(1, 7));
  Log.onRelease(1, vc({{1, 8}}), 3);
  unsigned Drained = 0;
  Log.drainOrdered(0, vc({{1, 6}}),
                   [&](const VectorClock &, uint64_t) { ++Drained; });
  EXPECT_EQ(Drained, 0u);
  Log.drainOrdered(0, vc({{1, 7}}),
                   [&](const VectorClock &, uint64_t) { ++Drained; });
  EXPECT_EQ(Drained, 1u);
}

TEST(RuleBLogTest, ReclamationKeepsSemantics) {
  // Push enough fully-drained entries to trigger reclamation, then check a
  // new batch still drains correctly and footprint stayed bounded.
  RuleBLog<Epoch> Log(/*PerReleaserCursors=*/false);
  VectorClock Knows;
  for (ClockValue I = 1; I <= 500; ++I) {
    Log.onAcquire(1, Epoch::make(1, I));
    Log.onRelease(1, vc({{1, I}}), I);
    Knows.set(1, I);
    Log.drainOrdered(0, Knows, [](const VectorClock &, uint64_t) {});
  }
  size_t Footprint = Log.footprintBytes();
  EXPECT_LT(Footprint, 500 * sizeof(VectorClock))
      << "drained entries must be reclaimed";
  Log.onAcquire(1, Epoch::make(1, 501));
  Log.onRelease(1, vc({{1, 501}}), 501);
  Knows.set(1, 501);
  unsigned Drained = 0;
  Log.drainOrdered(0, Knows,
                   [&](const VectorClock &, uint64_t) { ++Drained; });
  EXPECT_EQ(Drained, 1u);
}

} // namespace
