//===- tests/support/VectorClockTest.cpp - VectorClock unit tests ---------===//

#include "support/VectorClock.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <vector>

using namespace st;

TEST(VectorClockTest, DefaultIsAllZero) {
  VectorClock C;
  EXPECT_EQ(C.get(0), 0u);
  EXPECT_EQ(C.get(100), 0u);
  EXPECT_EQ(C.size(), 0u);
}

TEST(VectorClockTest, SetAndGet) {
  VectorClock C;
  C.set(3, 7);
  EXPECT_EQ(C.get(3), 7u);
  EXPECT_EQ(C.get(2), 0u);
  EXPECT_EQ(C.get(4), 0u);
  EXPECT_EQ(C.size(), 4u);
}

TEST(VectorClockTest, IncrementGrowsEntry) {
  VectorClock C;
  C.increment(2);
  C.increment(2);
  EXPECT_EQ(C.get(2), 2u);
}

TEST(VectorClockTest, JoinTakesPointwiseMax) {
  VectorClock A, B;
  A.set(0, 5);
  A.set(1, 1);
  B.set(1, 9);
  B.set(2, 3);
  A.joinWith(B);
  EXPECT_EQ(A.get(0), 5u);
  EXPECT_EQ(A.get(1), 9u);
  EXPECT_EQ(A.get(2), 3u);
}

TEST(VectorClockTest, JoinWithShorterClockKeepsTail) {
  VectorClock A, B;
  A.set(5, 4);
  B.set(0, 2);
  A.joinWith(B);
  EXPECT_EQ(A.get(0), 2u);
  EXPECT_EQ(A.get(5), 4u);
}

TEST(VectorClockTest, LeqIsPointwise) {
  VectorClock A, B;
  A.set(0, 1);
  A.set(1, 2);
  B.set(0, 1);
  B.set(1, 3);
  EXPECT_TRUE(A.leq(B));
  EXPECT_FALSE(B.leq(A));
}

TEST(VectorClockTest, LeqHandlesImplicitZeros) {
  VectorClock A, B;
  A.set(4, 1);
  EXPECT_FALSE(A.leq(B));
  EXPECT_TRUE(B.leq(A));
  // Incomparable clocks: neither ⊑ holds.
  B.set(0, 1);
  EXPECT_FALSE(A.leq(B));
  EXPECT_FALSE(B.leq(A));
}

TEST(VectorClockTest, EpochLeq) {
  VectorClock C;
  C.set(2, 10);
  EXPECT_TRUE(C.epochLeq(Epoch::make(2, 10)));
  EXPECT_TRUE(C.epochLeq(Epoch::make(2, 9)));
  EXPECT_FALSE(C.epochLeq(Epoch::make(2, 11)));
  EXPECT_FALSE(C.epochLeq(Epoch::make(3, 1)));
  EXPECT_TRUE(C.epochLeq(Epoch::none())) << "⊥ precedes every clock";
}

TEST(VectorClockTest, InfiniteEntryNeverLeq) {
  VectorClock C;
  C.set(1, InfiniteClock);
  VectorClock D;
  D.set(1, InfiniteClock - 1);
  EXPECT_FALSE(C.leq(D));
  EXPECT_FALSE(D.epochLeq(Epoch::make(1, InfiniteClock)));
}

TEST(VectorClockTest, EqualityIgnoresTrailingZeros) {
  VectorClock A, B;
  A.set(0, 1);
  B.set(0, 1);
  B.set(7, 0);
  EXPECT_EQ(A, B);
  B.set(7, 1);
  EXPECT_NE(A, B);
}

TEST(VectorClockTest, MakeSingleton) {
  VectorClock C = VectorClock::makeSingleton(3, 1);
  EXPECT_EQ(C.get(3), 1u);
  EXPECT_EQ(C.get(0), 0u);
  EXPECT_EQ(C.epochOf(3), Epoch::make(3, 1));
}

//===----------------------------------------------------------------------===//
// Inline small-buffer storage
//===----------------------------------------------------------------------===//

TEST(VectorClockSboTest, StaysInlineUpToCapacity) {
  VectorClock C;
  EXPECT_TRUE(C.isInline());
  EXPECT_EQ(C.footprintBytes(), 0u) << "inline clocks own no heap memory";
  for (ThreadId T = 0; T != VectorClock::InlineCapacity; ++T)
    C.set(T, T + 1);
  EXPECT_TRUE(C.isInline());
  EXPECT_EQ(C.footprintBytes(), 0u);
}

TEST(VectorClockSboTest, GrowthAcrossInlineBoundaryPreservesEntries) {
  VectorClock C;
  for (ThreadId T = 0; T != VectorClock::InlineCapacity; ++T)
    C.set(T, T + 100);
  C.set(static_cast<ThreadId>(VectorClock::InlineCapacity), 7);
  EXPECT_FALSE(C.isInline());
  EXPECT_GT(C.footprintBytes(), 0u);
  for (ThreadId T = 0; T != VectorClock::InlineCapacity; ++T)
    EXPECT_EQ(C.get(T), T + 100) << "entry " << T << " lost in the spill";
  EXPECT_EQ(C.get(static_cast<ThreadId>(VectorClock::InlineCapacity)), 7u);
}

TEST(VectorClockSboTest, SparseSetSpillsWithImplicitZeros) {
  VectorClock C;
  C.set(100, 5);
  EXPECT_FALSE(C.isInline());
  EXPECT_EQ(C.get(100), 5u);
  for (ThreadId T = 0; T != 100; ++T)
    EXPECT_EQ(C.get(T), 0u);
}

TEST(VectorClockSboTest, CopyAcrossStorageStates) {
  VectorClock Small;
  Small.set(2, 9);
  VectorClock Big;
  Big.set(40, 3);

  VectorClock CopyOfSmall(Small);
  EXPECT_TRUE(CopyOfSmall.isInline());
  EXPECT_EQ(CopyOfSmall, Small);

  VectorClock CopyOfBig(Big);
  EXPECT_FALSE(CopyOfBig.isInline());
  EXPECT_EQ(CopyOfBig, Big);

  // Assign heap-backed into inline and vice versa; sources stay intact.
  CopyOfSmall = Big;
  EXPECT_EQ(CopyOfSmall, Big);
  EXPECT_EQ(Big.get(40), 3u);
  CopyOfBig = Small;
  EXPECT_EQ(CopyOfBig, Small);
  EXPECT_EQ(Small.get(2), 9u);
}

TEST(VectorClockSboTest, SelfAssignmentIsANoOp) {
  VectorClock C;
  C.set(30, 4);
  C.set(1, 2);
  VectorClock Expect(C);
  C = *&C;
  EXPECT_EQ(C, Expect);
}

TEST(VectorClockSboTest, MoveStealsHeapAndCopiesInline) {
  VectorClock Big;
  Big.set(40, 3);
  VectorClock MovedBig(std::move(Big));
  EXPECT_EQ(MovedBig.get(40), 3u);
  EXPECT_EQ(Big.size(), 0u) << "moved-from clock must read as all-zero";
  EXPECT_EQ(Big.get(40), 0u);
  Big.set(40, 8); // moved-from clocks remain usable
  EXPECT_EQ(Big.get(40), 8u);

  VectorClock Small;
  Small.set(2, 9);
  VectorClock MovedSmall;
  MovedSmall = std::move(Small);
  EXPECT_TRUE(MovedSmall.isInline());
  EXPECT_EQ(MovedSmall.get(2), 9u);
  EXPECT_EQ(Small.size(), 0u);

  // Move-assign over an existing heap buffer must not leak (ASan gates).
  VectorClock Target;
  Target.set(50, 1);
  VectorClock Source;
  Source.set(60, 2);
  Target = std::move(Source);
  EXPECT_EQ(Target.get(60), 2u);
  EXPECT_EQ(Target.get(50), 0u);
}

TEST(VectorClockSboTest, ClearKeepsStorageAndReadsZero) {
  VectorClock C;
  C.set(40, 3);
  C.clear();
  EXPECT_EQ(C.size(), 0u);
  EXPECT_EQ(C.get(40), 0u);
  EXPECT_EQ(C, VectorClock());
  C.set(40, 5); // reuses the retained buffer
  EXPECT_EQ(C.get(40), 5u);
}

//===----------------------------------------------------------------------===//
// Property: equivalence with a naive reference clock
//===----------------------------------------------------------------------===//

namespace {

/// The obviously-correct model: a plain map-as-vector with no storage
/// tricks. Mirrors the subset of the VectorClock API the analyses use.
struct ReferenceClock {
  std::vector<ClockValue> Vals;

  ClockValue get(ThreadId T) const { return T < Vals.size() ? Vals[T] : 0; }
  void set(ThreadId T, ClockValue C) {
    if (T >= Vals.size())
      Vals.resize(T + 1, 0);
    Vals[T] = C;
  }
  void joinWith(const ReferenceClock &O) {
    for (size_t I = 0; I != O.Vals.size(); ++I)
      set(static_cast<ThreadId>(I),
          std::max(get(static_cast<ThreadId>(I)), O.Vals[I]));
  }
  bool leq(const ReferenceClock &O) const {
    for (size_t I = 0; I != Vals.size(); ++I)
      if (Vals[I] > O.get(static_cast<ThreadId>(I)))
        return false;
    return true;
  }
  bool equals(const ReferenceClock &O) const {
    size_t N = std::max(Vals.size(), O.Vals.size());
    for (size_t I = 0; I != N; ++I)
      if (get(static_cast<ThreadId>(I)) != O.get(static_cast<ThreadId>(I)))
        return false;
    return true;
  }
};

} // namespace

TEST(VectorClockSboTest, PropertyRandomOpsMatchReferenceClock) {
  // Random op sequences over a pool of clocks, with tids straddling the
  // inline boundary so copies, moves, joins, and comparisons continuously
  // cross between the two storage representations.
  constexpr size_t Pool = 6;
  constexpr unsigned MaxTid = 2 * VectorClock::InlineCapacity + 3;
  Rng R(20260728);
  for (unsigned Round = 0; Round != 50; ++Round) {
    VectorClock C[Pool];
    ReferenceClock M[Pool];
    for (unsigned Step = 0; Step != 200; ++Step) {
      size_t A = R.nextBelow(Pool), B = R.nextBelow(Pool);
      switch (R.nextBelow(6)) {
      case 0: { // set
        ThreadId T = static_cast<ThreadId>(R.nextBelow(MaxTid));
        ClockValue V = static_cast<ClockValue>(R.nextBelow(1000));
        C[A].set(T, V);
        M[A].set(T, V);
        break;
      }
      case 1: { // increment
        ThreadId T = static_cast<ThreadId>(R.nextBelow(MaxTid));
        C[A].increment(T);
        M[A].set(T, M[A].get(T) + 1);
        break;
      }
      case 2: // join
        C[A].joinWith(C[B]);
        M[A].joinWith(M[B]);
        break;
      case 3: // copy-assign
        C[A] = C[B];
        M[A] = M[B];
        break;
      case 4: { // copy-construct + move back through a temporary
        VectorClock Tmp(C[B]);
        C[A] = std::move(Tmp);
        M[A] = M[B];
        break;
      }
      case 5: // clear
        C[A].clear();
        M[A].Vals.clear();
        break;
      }
      // Full-state checks after every step so a divergence pinpoints the
      // op that introduced it.
      for (size_t I = 0; I != Pool; ++I) {
        for (ThreadId T = 0; T != MaxTid + 2; ++T)
          ASSERT_EQ(C[I].get(T), M[I].get(T))
              << "round " << Round << " step " << Step << " clock " << I
              << " tid " << T;
        ASSERT_EQ(C[I].leq(C[A]), M[I].leq(M[A]));
        ASSERT_EQ(C[I] == C[B], M[I].equals(M[B]));
      }
    }
  }
}
