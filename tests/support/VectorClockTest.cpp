//===- tests/support/VectorClockTest.cpp - VectorClock unit tests ---------===//

#include "support/VectorClock.h"

#include <gtest/gtest.h>

using namespace st;

TEST(VectorClockTest, DefaultIsAllZero) {
  VectorClock C;
  EXPECT_EQ(C.get(0), 0u);
  EXPECT_EQ(C.get(100), 0u);
  EXPECT_EQ(C.size(), 0u);
}

TEST(VectorClockTest, SetAndGet) {
  VectorClock C;
  C.set(3, 7);
  EXPECT_EQ(C.get(3), 7u);
  EXPECT_EQ(C.get(2), 0u);
  EXPECT_EQ(C.get(4), 0u);
  EXPECT_EQ(C.size(), 4u);
}

TEST(VectorClockTest, IncrementGrowsEntry) {
  VectorClock C;
  C.increment(2);
  C.increment(2);
  EXPECT_EQ(C.get(2), 2u);
}

TEST(VectorClockTest, JoinTakesPointwiseMax) {
  VectorClock A, B;
  A.set(0, 5);
  A.set(1, 1);
  B.set(1, 9);
  B.set(2, 3);
  A.joinWith(B);
  EXPECT_EQ(A.get(0), 5u);
  EXPECT_EQ(A.get(1), 9u);
  EXPECT_EQ(A.get(2), 3u);
}

TEST(VectorClockTest, JoinWithShorterClockKeepsTail) {
  VectorClock A, B;
  A.set(5, 4);
  B.set(0, 2);
  A.joinWith(B);
  EXPECT_EQ(A.get(0), 2u);
  EXPECT_EQ(A.get(5), 4u);
}

TEST(VectorClockTest, LeqIsPointwise) {
  VectorClock A, B;
  A.set(0, 1);
  A.set(1, 2);
  B.set(0, 1);
  B.set(1, 3);
  EXPECT_TRUE(A.leq(B));
  EXPECT_FALSE(B.leq(A));
}

TEST(VectorClockTest, LeqHandlesImplicitZeros) {
  VectorClock A, B;
  A.set(4, 1);
  EXPECT_FALSE(A.leq(B));
  EXPECT_TRUE(B.leq(A));
  // Incomparable clocks: neither ⊑ holds.
  B.set(0, 1);
  EXPECT_FALSE(A.leq(B));
  EXPECT_FALSE(B.leq(A));
}

TEST(VectorClockTest, EpochLeq) {
  VectorClock C;
  C.set(2, 10);
  EXPECT_TRUE(C.epochLeq(Epoch::make(2, 10)));
  EXPECT_TRUE(C.epochLeq(Epoch::make(2, 9)));
  EXPECT_FALSE(C.epochLeq(Epoch::make(2, 11)));
  EXPECT_FALSE(C.epochLeq(Epoch::make(3, 1)));
  EXPECT_TRUE(C.epochLeq(Epoch::none())) << "⊥ precedes every clock";
}

TEST(VectorClockTest, InfiniteEntryNeverLeq) {
  VectorClock C;
  C.set(1, InfiniteClock);
  VectorClock D;
  D.set(1, InfiniteClock - 1);
  EXPECT_FALSE(C.leq(D));
  EXPECT_FALSE(D.epochLeq(Epoch::make(1, InfiniteClock)));
}

TEST(VectorClockTest, EqualityIgnoresTrailingZeros) {
  VectorClock A, B;
  A.set(0, 1);
  B.set(0, 1);
  B.set(7, 0);
  EXPECT_EQ(A, B);
  B.set(7, 1);
  EXPECT_NE(A, B);
}

TEST(VectorClockTest, MakeSingleton) {
  VectorClock C = VectorClock::makeSingleton(3, 1);
  EXPECT_EQ(C.get(3), 1u);
  EXPECT_EQ(C.get(0), 0u);
  EXPECT_EQ(C.epochOf(3), Epoch::make(3, 1));
}
