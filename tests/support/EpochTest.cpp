//===- tests/support/EpochTest.cpp - Epoch unit tests ---------------------===//

#include "support/Epoch.h"

#include <gtest/gtest.h>

using namespace st;

TEST(EpochTest, DefaultIsNone) {
  Epoch E;
  EXPECT_TRUE(E.isNone());
  EXPECT_EQ(E, Epoch::none());
}

TEST(EpochTest, MakeRoundTrips) {
  Epoch E = Epoch::make(7, 42);
  EXPECT_EQ(E.tid(), 7u);
  EXPECT_EQ(E.clock(), 42u);
  EXPECT_FALSE(E.isNone());
}

TEST(EpochTest, ZeroClockOfThreadZeroIsNone) {
  // Thread-local clocks start at 1, so 0@0 never names a real access and
  // doubles as the ⊥ encoding.
  EXPECT_TRUE(Epoch::make(0, 0).isNone());
  EXPECT_FALSE(Epoch::make(0, 1).isNone());
  EXPECT_FALSE(Epoch::make(1, 0).isNone());
}

TEST(EpochTest, EqualityComparesTidAndClock) {
  EXPECT_EQ(Epoch::make(3, 9), Epoch::make(3, 9));
  EXPECT_NE(Epoch::make(3, 9), Epoch::make(3, 10));
  EXPECT_NE(Epoch::make(3, 9), Epoch::make(4, 9));
}

TEST(EpochTest, LargeValuesSurvivePacking) {
  Epoch E = Epoch::make(0xfffffffeu, 0xfffffffdu);
  EXPECT_EQ(E.tid(), 0xfffffffeu);
  EXPECT_EQ(E.clock(), 0xfffffffdu);
}
