//===- tests/support/RngTest.cpp - Rng unit tests -------------------------===//

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace st;

TEST(RngTest, DeterministicForSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  bool Differs = false;
  for (int I = 0; I < 10 && !Differs; ++I)
    Differs = A.next() != B.next();
  EXPECT_TRUE(Differs);
}

TEST(RngTest, NextBelowStaysInBounds) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBelow(13), 13u);
}

TEST(RngTest, NextBelowCoversRange) {
  Rng R(7);
  bool Seen[5] = {};
  for (int I = 0; I < 1000; ++I)
    Seen[R.nextBelow(5)] = true;
  for (bool S : Seen)
    EXPECT_TRUE(S);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng R(11);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 2000; ++I) {
    uint64_t V = R.nextInRange(3, 5);
    EXPECT_GE(V, 3u);
    EXPECT_LE(V, 5u);
    SawLo |= V == 3;
    SawHi |= V == 5;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RngTest, NextBoolExtremes) {
  Rng R(3);
  for (int I = 0; I < 50; ++I) {
    EXPECT_FALSE(R.nextBool(0.0));
    EXPECT_TRUE(R.nextBool(1.0));
  }
}

TEST(RngTest, NextBoolRoughlyCalibrated) {
  Rng R(5);
  int Hits = 0;
  for (int I = 0; I < 10000; ++I)
    Hits += R.nextBool(0.3);
  EXPECT_GT(Hits, 2500);
  EXPECT_LT(Hits, 3500);
}
