//===- tests/vindicate/VindicatorTest.cpp - Vindication tests -------------===//
//
// Validates the vindicator against the paper's figures (fig1/fig2 races
// vindicate, fig3's false WDC-race must not) and against the exhaustive
// oracle on random traces: every vindicated race must be a true predictable
// race with a checkable witness.
//
//===----------------------------------------------------------------------===//

#include "vindicate/Vindicator.h"

#include "analysis/AnalysisRegistry.h"
#include "oracle/PredictableRace.h"
#include "trace/TraceText.h"
#include "workload/Figures.h"
#include "workload/RandomTrace.h"

#include <gtest/gtest.h>

using namespace st;

namespace {

TEST(VindicatorTest, Fig1aRaceVindicates) {
  Trace Tr = figures::fig1a();
  VindicationResult R = vindicateRace(Tr, 0, 7); // rd(x) T1, wr(x) T2
  ASSERT_TRUE(R.Vindicated) << R.FailureReason;
  std::string Error;
  EXPECT_TRUE(checkWitness(Tr, R.Witness, &Error)) << Error;
  // The witness reorders T2's critical section before T1's rd(x), exactly
  // Figure 1(b): the prefix is T2's acq(m), rd(z), rel(m).
  EXPECT_EQ(R.Witness.Prefix.size(), 3u);
  EXPECT_EQ(R.Witness.First, 0u);
  EXPECT_EQ(R.Witness.Second, 7u);
}

TEST(VindicatorTest, Fig2aRaceVindicates) {
  Trace Tr = figures::fig2a();
  // rd(x) by T1 is event 0; wr(x) by T3 is the last event.
  VindicationResult R = vindicateRace(Tr, 0, Tr.size() - 1);
  ASSERT_TRUE(R.Vindicated) << R.FailureReason;
  std::string Error;
  EXPECT_TRUE(checkWitness(Tr, R.Witness, &Error)) << Error;
  // Figure 2(b): only T3's empty critical section on n precedes the race.
  EXPECT_EQ(R.Witness.Prefix.size(), 2u);
}

TEST(VindicatorTest, Fig3FalseRaceDoesNotVindicate) {
  Trace Tr = figures::fig3();
  // The WDC-race: rd(x) by T1 (event 5) vs wr(x) by T3 (last event).
  ASSERT_EQ(Tr[5].Kind, EventKind::Read);
  VindicationResult R = vindicateRace(Tr, 5, Tr.size() - 1);
  EXPECT_FALSE(R.Vindicated)
      << "fig3's WDC-race is not a predictable race";
  EXPECT_FALSE(R.FailureReason.empty());
}

TEST(VindicatorTest, DetectedWdcRacesOnFiguresVindicateCorrectly) {
  // End-to-end: run WDC analysis, vindicate what it reports, and compare
  // with the paper's verdicts.
  struct Case {
    Trace Tr;
    bool ExpectVindicated;
  } Cases[] = {
      {figures::fig1a(), true},
      {figures::fig2a(), true},
      {figures::fig3(), false},
  };
  for (auto &C : Cases) {
    auto A = createAnalysis(AnalysisKind::UnoptWDC);
    A->processTrace(C.Tr);
    ASSERT_EQ(A->dynamicRaces(), 1u);
    VindicationResult R =
        vindicateRaceAtEvent(C.Tr, A->raceRecords().front().EventIdx);
    EXPECT_EQ(R.Vindicated, C.ExpectVindicated) << R.FailureReason;
  }
}

TEST(VindicatorTest, BothRacingAccessesHoldingSameLockFails) {
  Trace Tr = traceFromText(R"(
    T1: acq(m)
    T1: wr(x)
    T1: rel(m)
    T2: acq(m)
    T2: wr(x)
    T2: rel(m)
  )");
  VindicationResult R = vindicateRace(Tr, 1, 4);
  EXPECT_FALSE(R.Vindicated);
  EXPECT_NE(R.FailureReason.find("lock"), std::string::npos)
      << R.FailureReason;
}

TEST(VindicatorTest, WriteReadPairOrdersWriteFirstWhenObserved) {
  Trace Tr = traceFromText("T1: wr(x)\nT2: rd(x)\n");
  VindicationResult R = vindicateRace(Tr, 0, 1);
  ASSERT_TRUE(R.Vindicated) << R.FailureReason;
  EXPECT_EQ(R.Witness.First, 0u);
  EXPECT_EQ(R.Witness.Second, 1u);
}

TEST(VindicatorTest, ReadFirstWhenWriterNotObserved) {
  Trace Tr = traceFromText("T2: rd(x)\nT1: wr(x)\n");
  VindicationResult R = vindicateRace(Tr, 0, 1);
  ASSERT_TRUE(R.Vindicated) << R.FailureReason;
  EXPECT_EQ(R.Witness.First, 0u) << "the read saw no writer";
  EXPECT_EQ(R.Witness.Second, 1u);
}

TEST(VindicatorTest, ForkJoinConstraintsRespected) {
  Trace Tr = traceFromText(R"(
    T1: fork(T2)
    T2: wr(x)
    T1: join(T2)
    T1: wr(x)
  )");
  VindicationResult R = vindicateRace(Tr, 1, 3);
  EXPECT_FALSE(R.Vindicated)
      << "join forces the child's write before the parent's";
}

TEST(VindicatorTest, SiblingRaceVindicates) {
  Trace Tr = traceFromText(R"(
    T1: fork(T2)
    T1: fork(T3)
    T2: wr(x)
    T3: wr(x)
  )");
  VindicationResult R = vindicateRace(Tr, 2, 3);
  ASSERT_TRUE(R.Vindicated) << R.FailureReason;
  std::string Error;
  EXPECT_TRUE(checkWitness(Tr, R.Witness, &Error)) << Error;
}

TEST(VindicatorTest, NonConflictingPairRejected) {
  Trace Tr = traceFromText("T1: rd(x)\nT2: rd(x)\n");
  VindicationResult R = vindicateRace(Tr, 0, 1);
  EXPECT_FALSE(R.Vindicated);
  EXPECT_NE(R.FailureReason.find("conflict"), std::string::npos);
}

class VindicatorProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VindicatorProperty, VindicatedRacesAreTruePredictableRaces) {
  RandomTraceConfig C;
  C.Seed = GetParam() * 104729;
  C.Threads = 2 + GetParam() % 2;
  C.Vars = 2;
  C.Locks = 1 + GetParam() % 2;
  C.Events = 14;
  C.MaxNesting = 2;
  C.PSync = 0.5;
  Trace Tr = generateRandomTrace(C);

  auto A = createAnalysis(AnalysisKind::UnoptWDC);
  A->processTrace(Tr);
  for (const RaceReport &R : A->raceRecords()) {
    VindicationResult V = vindicateRaceAtEvent(Tr, R.EventIdx);
    if (!V.Vindicated)
      continue; // incompleteness is permitted; soundness is not
    std::string Error;
    EXPECT_TRUE(checkWitness(Tr, V.Witness, &Error))
        << Error << " (seed " << GetParam() << ")";
    EXPECT_TRUE(findPredictableRaceForPair(Tr, V.Witness.First,
                                           V.Witness.Second)
                    .has_value())
        << "vindicated pair is not predictable (seed " << GetParam() << ")";
  }
}

TEST_P(VindicatorProperty, VindicationMatchesOracleOnSimpleTraces) {
  // With nesting 1 and the original-order serialization heuristic, the
  // vindicator should agree with the oracle on these small traces.
  RandomTraceConfig C;
  C.Seed = GetParam() * 7907;
  C.Threads = 2;
  C.Vars = 2;
  C.Locks = 1;
  C.Events = 12;
  C.MaxNesting = 1;
  C.PSync = 0.4;
  Trace Tr = generateRandomTrace(C);

  auto A = createAnalysis(AnalysisKind::UnoptWDC);
  A->processTrace(Tr);
  for (const RaceReport &R : A->raceRecords()) {
    // Reconstruct the pair the detector compared against.
    size_t Second = R.EventIdx;
    long First = -1;
    for (size_t I = Second; I-- > 0;)
      if (conflict(Tr[I], Tr[Second])) {
        First = static_cast<long>(I);
        break;
      }
    ASSERT_GE(First, 0);
    VindicationResult V =
        vindicateRace(Tr, static_cast<size_t>(First), Second);
    bool OracleSays =
        findPredictableRaceForPair(Tr, static_cast<size_t>(First), Second)
            .has_value();
    if (V.Vindicated) {
      EXPECT_TRUE(OracleSays) << "unsound vindication (seed " << GetParam()
                              << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VindicatorProperty,
                         ::testing::Range<uint64_t>(1, 41));

} // namespace
