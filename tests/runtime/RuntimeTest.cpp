//===- tests/runtime/RuntimeTest.cpp - Online runtime tests ---------------===//

#include "runtime/Runtime.h"

#include "analysis/AnalysisRegistry.h"
#include "vindicate/Vindicator.h"

#include <gtest/gtest.h>

#include <condition_variable>
#include <thread>

using namespace st;

namespace {

TEST(RuntimeTest, SingleThreadedUseIsRaceFree) {
  Detector D(createAnalysis(AnalysisKind::STWDC));
  SharedVar<int> X(D, 0);
  InstrumentedMutex M(D);
  X.store(0, 41);
  ScopedLock Guard(M, 0);
  X.store(0, X.load(0) + 1);
  EXPECT_EQ(D.analysis().dynamicRaces(), 0u);
}

TEST(RuntimeTest, UnsynchronizedThreadsRace) {
  Detector D(createAnalysis(AnalysisKind::STWDC));
  SharedVar<int> X(D, 0);
  ThreadId T1 = D.forkThread(0);
  ThreadId T2 = D.forkThread(0);
  std::thread A([&] { X.store(T1, 1); });
  std::thread B([&] { X.store(T2, 2); });
  A.join();
  B.join();
  D.joinThread(0, T1);
  D.joinThread(0, T2);
  EXPECT_EQ(D.analysis().dynamicRaces(), 1u)
      << "two unsynchronized writes race in every linearization";
}

TEST(RuntimeTest, LockProtectedThreadsDoNotRace) {
  Detector D(createAnalysis(AnalysisKind::STWDC));
  SharedVar<int> Counter(D, 0);
  InstrumentedMutex M(D);
  ThreadId T1 = D.forkThread(0);
  ThreadId T2 = D.forkThread(0);
  auto Work = [&](ThreadId T) {
    for (int I = 0; I < 100; ++I) {
      ScopedLock Guard(M, T);
      Counter.store(T, Counter.load(T) + 1);
    }
  };
  std::thread A(Work, T1), B(Work, T2);
  A.join();
  B.join();
  D.joinThread(0, T1);
  D.joinThread(0, T2);
  EXPECT_EQ(D.analysis().dynamicRaces(), 0u);
}

TEST(RuntimeTest, JoinedWorkIsOrdered) {
  Detector D(createAnalysis(AnalysisKind::STWDC));
  SharedVar<int> X(D, 0);
  ThreadId T1 = D.forkThread(0);
  std::thread A([&] { X.store(T1, 1); });
  A.join();
  D.joinThread(0, T1);
  X.store(0, 2);
  EXPECT_EQ(D.analysis().dynamicRaces(), 0u);
}

TEST(RuntimeTest, PredictiveRaceFoundDespiteLuckySchedule) {
  // Reproduces Figure 1 with real threads: an (uninstrumented) condition
  // variable forces the observed schedule where the lock "protects" the
  // accesses, yet predictive analysis still exposes the race — the paper's
  // core motivation.
  Detector D(createAnalysis(AnalysisKind::STWDC), /*KeepTrace=*/true);
  Detector DHb(createAnalysis(AnalysisKind::FTOHB));
  SharedVar<int> X(D, 0), Y(D, 0), Z(D, 0);
  SharedVar<int> XH(DHb, 0), YH(DHb, 0), ZH(DHb, 0);
  InstrumentedMutex M(D), MH(DHb);

  std::mutex SeqMutex;
  std::condition_variable SeqCv;
  int Stage = 0;

  ThreadId T1 = D.forkThread(0);
  ThreadId T2 = D.forkThread(0);
  DHb.forkThread(0);
  DHb.forkThread(0);

  std::thread A([&] {
    X.load(T1, 100);
    XH.load(T1, 100);
    {
      ScopedLock Guard(M, T1);
      ScopedLock GuardH(MH, T1);
      Y.store(T1, 1);
      YH.store(T1, 1);
    }
    std::lock_guard<std::mutex> G(SeqMutex);
    Stage = 1;
    SeqCv.notify_all();
  });
  std::thread B([&] {
    {
      std::unique_lock<std::mutex> G(SeqMutex);
      SeqCv.wait(G, [&] { return Stage == 1; });
    }
    {
      ScopedLock Guard(M, T2);
      ScopedLock GuardH(MH, T2);
      Z.load(T2);
      ZH.load(T2);
    }
    X.store(T2, 200);
    XH.store(T2, 200);
  });
  A.join();
  B.join();

  EXPECT_EQ(DHb.analysis().dynamicRaces(), 0u)
      << "HB misses the predictable race";
  ASSERT_EQ(D.analysis().dynamicRaces(), 1u)
      << "WDC detects the predictable race";

  // And the recorded trace lets us vindicate it offline.
  Trace Tr = D.recordedTrace();
  ASSERT_TRUE(Tr.validate());
  VindicationResult R =
      vindicateRaceAtEvent(Tr, D.analysis().raceRecords().front().EventIdx);
  EXPECT_TRUE(R.Vindicated) << R.FailureReason;
}

TEST(RuntimeTest, RecordedTraceMatchesEvents) {
  Detector D(createAnalysis(AnalysisKind::FTOHB), /*KeepTrace=*/true);
  SharedVar<int> X(D, 0);
  InstrumentedMutex M(D);
  ScopedLock Guard(M, 0);
  X.store(0, 5);
  Trace Tr = D.recordedTrace();
  ASSERT_EQ(Tr.size(), 2u);
  EXPECT_EQ(Tr[0].Kind, EventKind::Acquire);
  EXPECT_EQ(Tr[1].Kind, EventKind::Write);
}

TEST(RuntimeTest, IdAllocatorsAreUnique) {
  Detector D(createAnalysis(AnalysisKind::FTOHB));
  EXPECT_NE(D.makeVar(), D.makeVar());
  EXPECT_NE(D.makeLock(), D.makeLock());
  EXPECT_NE(D.makeVolatile(), D.makeVolatile());
}

TEST(RuntimeTest, RaceSinkDeliversCallbacksDuringConcurrentIntake) {
  // Online reaction: a CallbackSink attached to the Detector must observe
  // every counted race at race time, while real threads are still
  // hammering the intake. The callback runs inside the intake critical
  // section, so the plain vector below needs no extra synchronization.
  Detector D(createAnalysis(AnalysisKind::STWDC));
  std::vector<RaceReport> Live;
  CallbackSink Sink([&](const RaceReport &R) { Live.push_back(R); });
  D.setRaceSink(&Sink);

  SharedVar<int> X(D, 0);
  InstrumentedMutex M(D);
  constexpr int Iters = 50;
  ThreadId T1 = D.forkThread(0);
  ThreadId T2 = D.forkThread(0);
  auto Work = [&](ThreadId T) {
    for (int I = 0; I < Iters; ++I) {
      X.store(T, I);          // unprotected: races
      ScopedLock Guard(M, T); // plus real lock traffic interleaved
    }
  };
  std::thread A(Work, T1), B(Work, T2);
  A.join();
  B.join();
  D.joinThread(0, T1);
  D.joinThread(0, T2);

  EXPECT_GT(D.analysis().dynamicRaces(), 0u);
  ASSERT_EQ(Live.size(), D.analysis().dynamicRaces())
      << "one callback per counted dynamic race";
  for (const RaceReport &R : Live) {
    EXPECT_EQ(R.Var, X.id());
    EXPECT_TRUE(R.IsWrite);
    EXPECT_EQ(R.Provenance, SiteProvenance::FallbackVar);
    EXPECT_STREQ(R.AnalysisName, "ST-WDC");
    EXPECT_TRUE(R.Tid == T1 || R.Tid == T2);
  }
  // Reports arrive in intake order, so event indices strictly increase.
  for (size_t I = 1; I < Live.size(); ++I)
    EXPECT_LT(Live[I - 1].EventIdx, Live[I].EventIdx);
}

TEST(RuntimeTest, VolatileOpsFlowThrough) {
  Detector D(createAnalysis(AnalysisKind::STWDC));
  SharedVar<int> X(D, 0);
  VarId F = D.makeVolatile();
  ThreadId T1 = D.forkThread(0);
  // Sequential (single real thread) but logically two threads with a
  // volatile handoff: no race.
  X.store(0, 1);
  D.onVolWrite(0, F);
  D.onVolRead(T1, F);
  X.store(T1, 2);
  EXPECT_EQ(D.analysis().dynamicRaces(), 0u);
}

} // namespace
