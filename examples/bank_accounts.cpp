//===- examples/bank_accounts.cpp - Online detection on real threads ------===//
//
// A realistic scenario for the paper's motivation: a bank-transfer service
// where the audit counter is updated with inconsistent locking. The "lucky"
// schedule exercised here never trips the bug, so happens-before analysis
// stays silent — but SmartTrack's predictive analysis, watching the same
// execution through the TSan-style runtime, exposes the race *while the
// service is still running* (a CallbackSink prints it live), and offline
// vindication proves it real.
//
// Build & run:   cmake --build build && ./build/examples/bank_accounts
//
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisRegistry.h"
#include "report/RaceSink.h"
#include "runtime/Runtime.h"
#include "vindicate/Vindicator.h"

#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>

using namespace st;

namespace {

/// A tiny instrumented "bank": two accounts plus an audit counter that the
/// deposit path updates while holding the ledger lock but the report path
/// reads without it.
struct Bank {
  explicit Bank(Detector &D)
      : Ledger(D), Checking(D, 1000), Savings(D, 500), AuditCount(D, 0) {}

  InstrumentedMutex Ledger;
  SharedVar<int> Checking;
  SharedVar<int> Savings;
  SharedVar<int> AuditCount; // the bug: not consistently protected
};

} // namespace

int main() {
  Detector D(createAnalysis(AnalysisKind::STWDC), /*KeepTrace=*/true);
  Detector DHb(createAnalysis(AnalysisKind::FTOHB));

  // React at race time: the first report is printed while the "service"
  // threads are still executing, not scraped after the run. The callback
  // fires on the racing thread inside the detector's intake section, so
  // it stays short and does not call back into the detector.
  unsigned LiveRaces = 0;
  CallbackSink Live([&](const RaceReport &R) {
    if (LiveRaces++ == 0)
      std::printf("LIVE %s race: %s of x%u by T%u at event %llu (%s)\n",
                  R.AnalysisName, R.IsWrite ? "write" : "read", R.Var,
                  R.Tid, static_cast<unsigned long long>(R.EventIdx),
                  raceSiteString(R).c_str());
  });
  D.setRaceSink(&Live);

  Bank B(D);

  // Mirror of the bank for the HB detector (so both observe equal events).
  InstrumentedMutex LedgerH(DHb);
  SharedVar<int> CheckingH(DHb, 1000), SavingsH(DHb, 500), AuditH(DHb, 0);

  // Sequence the two workers so the observed schedule looks safe: the
  // reporter runs strictly after the transfer. (The condition variable is
  // deliberately invisible to the detectors — ad-hoc synchronization the
  // analysis cannot rely on, just like the paper's "lucky schedule".)
  std::mutex Seq;
  std::condition_variable Cv;
  bool TransferDone = false;

  ThreadId Teller = D.forkThread(0);
  ThreadId Reporter = D.forkThread(0);
  DHb.forkThread(0);
  DHb.forkThread(0);

  std::thread TellerThread([&] {
    // The reporter's unprotected read races with this unprotected audit
    // bump — but only another schedule shows it.
    B.AuditCount.store(Teller, B.AuditCount.load(Teller, 10) + 1, 10);
    AuditH.store(Teller, AuditH.load(Teller, 10) + 1, 10);
    {
      ScopedLock Guard(B.Ledger, Teller);
      ScopedLock GuardH(LedgerH, Teller);
      int Amount = 200;
      B.Checking.store(Teller, B.Checking.load(Teller, 11) - Amount, 11);
      B.Savings.store(Teller, B.Savings.load(Teller, 12) + Amount, 12);
      CheckingH.store(Teller, CheckingH.load(Teller, 11) - Amount, 11);
      SavingsH.store(Teller, SavingsH.load(Teller, 12) + Amount, 12);
    }
    std::lock_guard<std::mutex> G(Seq);
    TransferDone = true;
    Cv.notify_all();
  });

  // The report path takes the ledger lock only to read the (otherwise
  // untouched) fee schedule — its critical section does not conflict with
  // the teller's, so the lock provides HB ordering but no real protection
  // for the audit counter: exactly Figure 1's shape.
  SharedVar<int> FeeSchedule(D, 3);
  SharedVar<int> FeeScheduleH(DHb, 3);
  std::thread ReporterThread([&] {
    {
      std::unique_lock<std::mutex> G(Seq);
      Cv.wait(G, [&] { return TransferDone; });
    }
    int Fee;
    {
      ScopedLock Guard(B.Ledger, Reporter);
      ScopedLock GuardH(LedgerH, Reporter);
      Fee = FeeSchedule.load(Reporter, 20);
      (void)FeeScheduleH.load(Reporter, 20);
    }
    // Unprotected audit read: the predictable race.
    int Audits = B.AuditCount.load(Reporter, 22);
    (void)AuditH.load(Reporter, 22);
    std::printf("report: fee=%d audits=%d\n", Fee, Audits);
  });

  TellerThread.join();
  ReporterThread.join();
  D.joinThread(0, Teller);
  D.joinThread(0, Reporter);
  DHb.joinThread(0, 1);
  DHb.joinThread(0, 2);

  std::printf("\nFTO-HB  saw %llu race(s) — the observed schedule looked "
              "safe\n",
              static_cast<unsigned long long>(DHb.analysis().dynamicRaces()));
  std::printf("ST-WDC  saw %llu race(s) — predictive analysis exposes the "
              "audit-counter bug\n",
              static_cast<unsigned long long>(D.analysis().dynamicRaces()));

  for (const RaceReport &R : D.analysis().raceRecords()) {
    VindicationResult V = vindicateRaceAtEvent(D.recordedTrace(), R.EventIdx);
    std::printf("  race at %s: %s\n", raceSiteString(R).c_str(),
                V.Vindicated ? "vindicated (true predictable race)"
                             : V.FailureReason.c_str());
  }
  return 0;
}
