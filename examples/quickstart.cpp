//===- examples/quickstart.cpp - Five-minute tour of the library ----------===//
//
// Builds a small execution trace, runs the SmartTrack-WDC detector on it,
// and vindicates the detected race. This is the paper's Figure 1 as a
// library user would encounter it.
//
// Build & run:   cmake --build build && ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisRegistry.h"
#include "trace/TraceText.h"
#include "vindicate/Vindicator.h"

#include <cstdio>

using namespace st;

int main() {
  // 1. Describe an observed execution. The TraceText DSL mirrors the
  //    paper's figures; TraceBuilder offers the same programmatically.
  Trace Tr = traceFromText(R"(
    T1: rd(x)
    T1: acq(m)
    T1: wr(y)
    T1: rel(m)
    T2: acq(m)
    T2: rd(z)
    T2: rel(m)
    T2: wr(x)
  )");

  // 2. Run a detector. Happens-before misses the race (the critical
  //    sections on m order the trace as observed)...
  auto Hb = createAnalysis(AnalysisKind::FTOHB);
  Hb->processTrace(Tr);
  std::printf("FTO-HB   : %llu race(s)\n",
              static_cast<unsigned long long>(Hb->dynamicRaces()));

  // ...but predictive analysis knows the accesses to x could have been
  // adjacent in another interleaving of the same execution.
  auto St = createAnalysis(AnalysisKind::STWDC);
  St->processTrace(Tr);
  std::printf("ST-WDC   : %llu race(s)\n",
              static_cast<unsigned long long>(St->dynamicRaces()));

  // 3. Vindicate: build a predicted trace that exposes the race, proving
  //    it is real before a human spends time on it.
  const RaceReport &Race = St->raceRecords().front();
  std::printf("race at event %llu on variable x%u\n",
              static_cast<unsigned long long>(Race.EventIdx), Race.Var);
  VindicationResult V = vindicateRaceAtEvent(Tr, Race.EventIdx);
  if (V.Vindicated) {
    std::printf("vindicated: schedule the %zu-event witness prefix, then "
                "events %zu and %zu run back to back\n",
                V.Witness.Prefix.size(), V.Witness.First, V.Witness.Second);
  } else {
    std::printf("not vindicated: %s\n", V.FailureReason.c_str());
  }
  return 0;
}
