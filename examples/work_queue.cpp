//===- examples/work_queue.cpp - Comparing detectors on one workload ------===//
//
// A producer/consumer work queue with a subtle bug: the "shutdown" flag is
// checked under the queue lock but set outside it. The example streams the
// same recorded execution through every analysis in the registry and
// prints the coverage/soundness/overhead trade-off the paper's Table 1
// describes, using live measurements.
//
// Build & run:   cmake --build build && ./build/examples/work_queue
//
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisRegistry.h"
#include "graph/EdgeRecorder.h"
#include "harness/Table.h"
#include "report/RaceSink.h"
#include "trace/Trace.h"
#include "vindicate/Vindicator.h"

#include <chrono>
#include <cstdio>

using namespace st;

namespace {

/// Simulates a work-queue execution: producers enqueue under a lock,
/// consumers dequeue under the lock, and the shutdown flag (variable 0) is
/// written without it. Returns the recorded trace.
Trace recordWorkQueueRun() {
  constexpr VarId ShutdownFlag = 0;
  constexpr VarId QueueSize = 1;
  constexpr VarId FirstSlot = 2;
  constexpr LockId QueueLock = 0;

  TraceBuilder B;
  B.fork(0, 1).fork(0, 2).fork(0, 3);

  // Producers 1 and 2 push items; consumer 3 pops them.
  unsigned Head = 0, Tail = 0;
  for (unsigned Round = 0; Round < 8; ++Round) {
    for (ThreadId Producer : {1u, 2u}) {
      B.acq(Producer, QueueLock);
      B.read(Producer, QueueSize, /*Site=*/100);
      B.write(Producer, FirstSlot + (Tail++ % 4), /*Site=*/101);
      B.write(Producer, QueueSize, /*Site=*/100);
      B.rel(Producer, QueueLock);
    }
    B.acq(3, QueueLock);
    B.read(3, ShutdownFlag, /*Site=*/200); // checked under the lock...
    B.read(3, QueueSize, /*Site=*/100);
    B.read(3, FirstSlot + (Head++ % 4), /*Site=*/102);
    B.write(3, QueueSize, /*Site=*/100);
    B.rel(3, QueueLock);
  }

  // Main briefly takes the lock to peek at the queue, then sets the
  // shutdown flag *without* it: the predictable race. The empty critical
  // section gives HB an ordering edge (so HB stays silent on the observed
  // schedule) but contains no conflicting access, so the predictive
  // relations leave the flag accesses unordered.
  B.acq(0, QueueLock);
  B.rel(0, QueueLock);
  B.write(0, ShutdownFlag, /*Site=*/201);
  B.join(0, 1).join(0, 2).join(0, 3);
  return B.build();
}

} // namespace

int main() {
  Trace Tr = recordWorkQueueRun();
  std::printf("recorded %zu events from the work-queue run\n\n", Tr.size());

  TablePrinter Table(
      {"Analysis", "Sound?", "Races", "Time (us)", "Metadata (KB)"});
  for (AnalysisKind K : allAnalysisKinds()) {
    EdgeRecorder Graph;
    auto A = createAnalysis(K, &Graph);
    auto Start = std::chrono::steady_clock::now();
    A->processTrace(Tr);
    auto End = std::chrono::steady_clock::now();
    double Us = std::chrono::duration<double, std::micro>(End - Start).count();
    const char *Sound = relationOf(K) == RelationKind::WDC ||
                                relationOf(K) == RelationKind::DC
                            ? "w/ vindication"
                            : "yes";
    char UsBuf[32], KbBuf[32];
    std::snprintf(UsBuf, sizeof(UsBuf), "%.0f", Us);
    std::snprintf(KbBuf, sizeof(KbBuf), "%.1f",
                  static_cast<double>(A->footprintBytes()) / 1024.0);
    Table.addRow({analysisKindName(K), Sound,
                  std::to_string(A->dynamicRaces()), UsBuf, KbBuf});
  }
  Table.print();

  auto Wdc = createAnalysis(AnalysisKind::STWDC);
  Wdc->processTrace(Tr);
  std::printf("\nHB misses the shutdown-flag race because the queue lock "
              "ordered the observed schedule;\npredictive analyses catch "
              "it. Vindication check:\n");
  for (const RaceReport &R : Wdc->raceRecords()) {
    VindicationResult V = vindicateRaceAtEvent(Tr, R.EventIdx);
    std::printf("  race on %s at event %llu: %s\n",
                raceSiteString(R).c_str(),
                static_cast<unsigned long long>(R.EventIdx),
                V.Vindicated ? "TRUE race (witness constructed)"
                             : V.FailureReason.c_str());
  }
  return 0;
}
