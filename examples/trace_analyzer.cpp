//===- examples/trace_analyzer.cpp - Command-line trace analysis ----------===//
//
// A small downstream-user tool showing the Session API end to end: open a
// streaming event source over a file or stdin, register an analysis, react
// to races live through a CallbackSink, and read the collected RunReport —
// no driver assembly or result scraping.
//
// Usage:
//   trace_analyzer [--analysis=ST-WDC] [--vindicate] [file.trace]
//   echo "T1: wr(x)
//   T2: wr(x)" | ./build/examples/trace_analyzer --vindicate
//
//===----------------------------------------------------------------------===//

#include "report/Session.h"
#include "trace/TraceText.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace st;

int main(int Argc, char **Argv) {
  AnalysisKind Kind = AnalysisKind::STWDC;
  bool Vindicate = false;
  const char *Path = nullptr;

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--analysis=", 11) == 0) {
      if (!findAnalysisKind(Arg + 11, Kind)) {
        std::fprintf(stderr, "unknown analysis '%s'; available:\n", Arg + 11);
        for (AnalysisKind K : allAnalysisKinds())
          std::fprintf(stderr, "  %s\n", analysisKindName(K));
        return 1;
      }
    } else if (std::strcmp(Arg, "--vindicate") == 0) {
      Vindicate = true;
    } else if (Arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: %s [--analysis=NAME] [--vindicate] [file]\n",
                   Argv[0]);
      return 1;
    } else {
      Path = Arg;
    }
  }

  FILE *In = Path ? std::fopen(Path, "rb") : stdin;
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", Path);
    return 1;
  }

  // 1. A streaming source over the raw bytes (format auto-detected).
  FileByteSource Bytes(In);
  OpenedEventSource Input = openEventSource(Bytes);
  const TraceTextParser *Names = Input.textParser();
  const std::vector<std::string> *Threads =
      Names ? &Names->threadNames() : nullptr;
  const std::vector<std::string> *Vars = Names ? &Names->varNames() : nullptr;

  // 2. A session: one analysis, races pushed to us the moment they are
  //    detected.
  SessionOptions Opts;
  Opts.Vindicate = Vindicate;
  Session S(Opts);
  S.add(Kind);
  CallbackSink Printer([&](const RaceReport &R) {
    std::printf("  race: %s of %s by %s at event %llu (%s)\n",
                R.IsWrite ? "write" : "read",
                symbolOrId(Vars, R.Var, 'x').c_str(),
                symbolOrId(Threads, R.Tid, 'T').c_str(),
                static_cast<unsigned long long>(R.EventIdx),
                raceSiteString(R).c_str());
  });
  S.addSink(Printer);

  // 3. One pass; the report carries everything a consumer needs.
  RunReport Rep = S.run(*Input.Events);
  if (Path)
    std::fclose(In);

  std::string Error;
  if (Input.Events->error(&Error)) {
    std::fprintf(stderr, "parse error: %s\n", Error.c_str());
    return 1;
  }

  const AnalysisRunResult &A = Rep.Analyses.front();
  std::printf("%s over %llu events (%u threads, %u vars, %u locks): "
              "%llu dynamic race(s), %u static site(s)\n",
              A.Name.c_str(),
              static_cast<unsigned long long>(Rep.Stream.Events),
              Rep.Stream.NumThreads, Rep.Stream.NumVars,
              Rep.Stream.NumLocks,
              static_cast<unsigned long long>(A.DynamicRaces),
              A.StaticRaces);
  for (size_t I = 0; I != A.Vindications.size(); ++I) {
    const VindicationResult &V = A.Vindications[I];
    if (V.Vindicated)
      std::printf("  event %llu: vindicated (%zu-event witness)\n",
                  static_cast<unsigned long long>(A.Races[I].EventIdx),
                  V.Witness.Prefix.size());
    else
      std::printf("  event %llu: not vindicated (%s)\n",
                  static_cast<unsigned long long>(A.Races[I].EventIdx),
                  V.FailureReason.c_str());
  }
  return A.DynamicRaces ? 2 : 0;
}
