//===- examples/trace_analyzer.cpp - Command-line trace analysis ----------===//
//
// A small downstream-user tool: reads a trace in the TraceText DSL (file
// or stdin), runs the requested analysis, reports races, and optionally
// vindicates them.
//
// Usage:
//   trace_analyzer [--analysis=ST-WDC] [--vindicate] [file.trace]
//   echo "T1: wr(x)
//   T2: wr(x)" | ./build/examples/trace_analyzer --vindicate
//
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisRegistry.h"
#include "graph/EdgeRecorder.h"
#include "trace/TraceText.h"
#include "vindicate/Vindicator.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace st;

static bool findKind(const char *Name, AnalysisKind &Out) {
  for (AnalysisKind K : allAnalysisKinds())
    if (std::strcmp(analysisKindName(K), Name) == 0) {
      Out = K;
      return true;
    }
  return false;
}

int main(int Argc, char **Argv) {
  AnalysisKind Kind = AnalysisKind::STWDC;
  bool Vindicate = false;
  const char *Path = nullptr;

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--analysis=", 11) == 0) {
      if (!findKind(Arg + 11, Kind)) {
        std::fprintf(stderr, "unknown analysis '%s'; available:\n", Arg + 11);
        for (AnalysisKind K : allAnalysisKinds())
          std::fprintf(stderr, "  %s\n", analysisKindName(K));
        return 1;
      }
    } else if (std::strcmp(Arg, "--vindicate") == 0) {
      Vindicate = true;
    } else if (Arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: %s [--analysis=NAME] [--vindicate] [file]\n",
                   Argv[0]);
      return 1;
    } else {
      Path = Arg;
    }
  }

  std::string Text;
  {
    FILE *In = Path ? std::fopen(Path, "r") : stdin;
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", Path);
      return 1;
    }
    char Buf[4096];
    size_t N;
    while ((N = std::fread(Buf, 1, sizeof(Buf), In)) > 0)
      Text.append(Buf, N);
    if (Path)
      std::fclose(In);
  }

  ParsedTrace Parsed;
  std::string Error;
  if (!parseTraceText(Text, Parsed, &Error)) {
    std::fprintf(stderr, "parse error: %s\n", Error.c_str());
    return 1;
  }

  EdgeRecorder Graph;
  auto A = createAnalysis(Kind, &Graph);
  A->processTrace(Parsed.Tr);

  std::printf("%s over %zu events (%u threads, %u vars, %u locks): "
              "%llu dynamic race(s), %u static site(s)\n",
              A->name(), Parsed.Tr.size(), Parsed.Tr.numThreads(),
              Parsed.Tr.numVars(), Parsed.Tr.numLocks(),
              static_cast<unsigned long long>(A->dynamicRaces()),
              A->staticRaces());

  for (const RaceRecord &R : A->raceRecords()) {
    const Event &E = Parsed.Tr[R.EventIdx];
    std::string Var = R.Var < Parsed.VarNames.size()
                          ? Parsed.VarNames[R.Var]
                          : "x" + std::to_string(R.Var);
    std::string Thread = E.Tid < Parsed.ThreadNames.size()
                             ? Parsed.ThreadNames[E.Tid]
                             : "T" + std::to_string(E.Tid);
    std::printf("  race: %s of %s by %s at event %llu",
                R.IsWrite ? "write" : "read", Var.c_str(), Thread.c_str(),
                static_cast<unsigned long long>(R.EventIdx));
    if (Vindicate) {
      VindicationResult V = vindicateRaceAtEvent(Parsed.Tr, R.EventIdx);
      if (V.Vindicated)
        std::printf("  [vindicated: %zu-event witness]",
                    V.Witness.Prefix.size());
      else
        std::printf("  [not vindicated: %s]", V.FailureReason.c_str());
    }
    std::printf("\n");
  }
  return A->dynamicRaces() ? 2 : 0;
}
