//===- examples/paper_figures.cpp - Walk the paper's figures ---------------===//
//
// An annotated, runnable walkthrough of the paper's example executions
// (Figures 1-3): for each figure it prints the trace, explains what each
// relation concludes and why, and demonstrates vindication, matching the
// paper's prose.
//
// Build & run:   cmake --build build && ./build/examples/paper_figures
//
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisRegistry.h"
#include "oracle/PredictableRace.h"
#include "trace/TraceText.h"
#include "vindicate/Vindicator.h"
#include "workload/Figures.h"

#include <cstdio>

using namespace st;

static uint64_t racesOf(AnalysisKind K, const Trace &Tr) {
  auto A = createAnalysis(K);
  A->processTrace(Tr);
  return A->dynamicRaces();
}

int main() {
  {
    Trace Tr = figures::fig1a();
    std::printf("--- Figure 1(a) ---\n%s\n", printTraceText(Tr).c_str());
    std::printf("HB orders rd(x) before wr(x) through the lock on m, so "
                "FTO-HB reports %llu races.\n",
                (unsigned long long)racesOf(AnalysisKind::FTOHB, Tr));
    std::printf("The critical sections touch different data (y vs z), so "
                "the predictive relations leave\nthe x accesses unordered: "
                "ST-WCP reports %llu, ST-DC %llu, ST-WDC %llu.\n",
                (unsigned long long)racesOf(AnalysisKind::STWCP, Tr),
                (unsigned long long)racesOf(AnalysisKind::STDC, Tr),
                (unsigned long long)racesOf(AnalysisKind::STWDC, Tr));
    VindicationResult V = vindicateRace(Tr, 0, Tr.size() - 1);
    std::printf("Vindication reorders T2's critical section first — "
                "Figure 1(b) — %s.\n\n",
                V.Vindicated ? "success" : "failure");
  }
  {
    Trace Tr = figures::fig2a();
    std::printf("--- Figure 2(a) ---\n%s\n", printTraceText(Tr).c_str());
    std::printf("The sections on m conflict on y, so rel(m) orders before "
                "T2's rd(y) in every predictive\nrelation; WCP then "
                "composes with the HB edge on n and orders the x accesses "
                "(races: %llu),\nwhile DC composes only with program order "
                "and reports the race (races: %llu).\n\n",
                (unsigned long long)racesOf(AnalysisKind::STWCP, Tr),
                (unsigned long long)racesOf(AnalysisKind::STDC, Tr));
  }
  {
    Trace Tr = figures::fig3();
    std::printf("--- Figure 3 ---\n%s\n", printTraceText(Tr).c_str());
    std::printf("WDC drops rule (b) and reports %llu race on x; DC's rule "
                "(b) orders the m sections and\nreports %llu. The WDC race "
                "is FALSE: the oracle finds %s, and vindication %s.\n",
                (unsigned long long)racesOf(AnalysisKind::STWDC, Tr),
                (unsigned long long)racesOf(AnalysisKind::STDC, Tr),
                findPredictableRace(Tr) ? "a predictable race"
                                        : "no predictable race",
                vindicateRace(Tr, 5, Tr.size() - 1).Vindicated
                    ? "succeeds (unexpected!)"
                    : "fails as it must");
    std::printf("\nThis is the paper's coverage/soundness trade-off: WDC "
                "is cheapest and catches everything,\nbut its rare false "
                "races need vindication; WCP needs none; DC sits in "
                "between.\n");
  }
  return 0;
}
